// Package merge provides the bounded worker pool behind every COLE
// background flush and merge.
//
// The engine used to spawn an unbounded goroutine per flush/merge, which
// is fine for one store but pathological for a sharded one: N shards ×
// L levels can put N·L run builds on the CPU at once, and at small scale
// the scheduling and page-cache churn makes sharded COLE* slower than a
// single engine. A Scheduler caps the number of *running* jobs at a fixed
// worker budget (default GOMAXPROCS); every level of every shard submits
// its jobs to the same pool, so aggregate merge work is bounded no matter
// how many partitions the store has.
//
// Submissions never block the caller: a job that cannot start immediately
// queues inside its own goroutine, and the queuing event is reported
// through the per-job onWait hook so engines can account back-pressure
// (core.Stats.MergeWaits). Determinism is unaffected — COLE*'s digests
// are checkpoint-based and independent of merge timing by construction
// (§5), so delaying a job's start only ever delays its commit checkpoint.
package merge

import (
	"runtime"
	"sync/atomic"
)

// Scheduler is a bounded pool for background flush/merge jobs. The zero
// value is not usable; construct with New. A Scheduler has no shutdown:
// it holds no goroutines of its own, and callers join their jobs through
// the done channels they already own (Engine.Close waits on every
// in-flight merge).
type Scheduler struct {
	slots chan struct{} // buffered; one token per running job

	submitted atomic.Int64
	waited    atomic.Int64
	// partitionWaited counts queue waits by sibling partitions of one
	// fanned-out merge (SubmitPartition / Yield re-entry). Intentional
	// fan-out saturates the pool by design; keeping its waits out of
	// `waited` stops it polluting cross-shard back-pressure diagnosis.
	partitionWaited atomic.Int64
}

// New creates a scheduler running at most `workers` jobs concurrently;
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{slots: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency budget.
func (s *Scheduler) Workers() int { return cap(s.slots) }

// acquire takes a worker slot, reporting (once) through onWait if the
// pool was saturated and the job had to queue.
func (s *Scheduler) acquire(onWait func()) {
	s.acquireInto(&s.waited, onWait)
}

// acquireInto is acquire with the wait charged to an explicit counter,
// so partition sub-jobs account separately from whole jobs.
func (s *Scheduler) acquireInto(counter *atomic.Int64, onWait func()) {
	select {
	case s.slots <- struct{}{}:
		return
	default:
	}
	counter.Add(1)
	if onWait != nil {
		onWait()
	}
	s.slots <- struct{}{}
}

func (s *Scheduler) release() { <-s.slots }

// Submit schedules job on the pool and returns immediately; the caller
// observes completion through whatever channel the job closes. onWait, if
// non-nil, is invoked once from the job's goroutine if the pool was full
// and the job had to queue before starting. onWait must not block on
// locks held across a wait for the job's completion, or the wait
// deadlocks — engines use an atomic counter.
func (s *Scheduler) Submit(job func(), onWait func()) {
	s.submitted.Add(1)
	go func() {
		s.acquire(onWait)
		defer s.release()
		job()
	}()
}

// Run executes job under the pool's budget and blocks until it returns:
// the synchronous-merge path (Algorithm 1 runs its cascade inline, but a
// sharded store commits many cascades in parallel goroutines, which this
// keeps bounded). onWait follows the Submit contract.
func (s *Scheduler) Run(job func(), onWait func()) {
	s.submitted.Add(1)
	s.acquire(onWait)
	defer s.release()
	job()
}

// SubmitPartition schedules one span of a partitioned merge on the pool
// and returns immediately. It differs from Submit only in accounting:
// a sibling partition queueing behind its own fan-out is expected, so
// its waits land in Stats.PartitionWaited instead of Stats.Waited.
// onWait follows the Submit contract.
func (s *Scheduler) SubmitPartition(job func(), onWait func()) {
	s.submitted.Add(1)
	go func() {
		s.acquireInto(&s.partitionWaited, onWait)
		defer s.release()
		job()
	}()
}

// Yield releases the calling job's worker slot for the duration of
// wait, then re-acquires one. A merge job that fans its spans out via
// SubmitPartition calls its join inside Yield: on a narrow pool the
// parent's slot is what lets its own spans run, so holding it across
// the join would deadlock. The re-acquisition wait is charged to
// Stats.PartitionWaited — it is fan-out bookkeeping, not back-pressure.
// Only call from inside a job started by Submit or Run.
func (s *Scheduler) Yield(wait func(), onWait func()) {
	s.release()
	wait()
	s.acquireInto(&s.partitionWaited, onWait)
}

// Stats is a snapshot of scheduler counters.
type Stats struct {
	// Submitted counts jobs handed to the pool (Submit, Run, and
	// SubmitPartition).
	Submitted int64
	// Waited counts whole jobs that found the pool saturated and queued:
	// genuine cross-shard contention.
	Waited int64
	// PartitionWaited counts queue waits by sibling partitions of a
	// fanned-out merge (including the parent's Yield re-entry).
	PartitionWaited int64
}

// Stats returns the scheduler counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Submitted:       s.submitted.Load(),
		Waited:          s.waited.Load(),
		PartitionWaited: s.partitionWaited.Load(),
	}
}
