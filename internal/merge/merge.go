// Package merge provides the bounded worker pool behind every COLE
// background flush and merge.
//
// The engine used to spawn an unbounded goroutine per flush/merge, which
// is fine for one store but pathological for a sharded one: N shards ×
// L levels can put N·L run builds on the CPU at once, and at small scale
// the scheduling and page-cache churn makes sharded COLE* slower than a
// single engine. A Scheduler caps the number of *running* jobs at a fixed
// worker budget (default GOMAXPROCS); every level of every shard submits
// its jobs to the same pool, so aggregate merge work is bounded no matter
// how many partitions the store has.
//
// Submissions never block the caller: a job that cannot start immediately
// queues inside its own goroutine, and the queuing event is reported
// through the per-job onWait hook so engines can account back-pressure
// (core.Stats.MergeWaits). Determinism is unaffected — COLE*'s digests
// are checkpoint-based and independent of merge timing by construction
// (§5), so delaying a job's start only ever delays its commit checkpoint.
package merge

import (
	"runtime"
	"sync/atomic"
)

// Scheduler is a bounded pool for background flush/merge jobs. The zero
// value is not usable; construct with New. A Scheduler has no shutdown:
// it holds no goroutines of its own, and callers join their jobs through
// the done channels they already own (Engine.Close waits on every
// in-flight merge).
type Scheduler struct {
	slots chan struct{} // buffered; one token per running job

	submitted atomic.Int64
	waited    atomic.Int64
}

// New creates a scheduler running at most `workers` jobs concurrently;
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{slots: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency budget.
func (s *Scheduler) Workers() int { return cap(s.slots) }

// acquire takes a worker slot, reporting (once) through onWait if the
// pool was saturated and the job had to queue.
func (s *Scheduler) acquire(onWait func()) {
	select {
	case s.slots <- struct{}{}:
		return
	default:
	}
	s.waited.Add(1)
	if onWait != nil {
		onWait()
	}
	s.slots <- struct{}{}
}

func (s *Scheduler) release() { <-s.slots }

// Submit schedules job on the pool and returns immediately; the caller
// observes completion through whatever channel the job closes. onWait, if
// non-nil, is invoked once from the job's goroutine if the pool was full
// and the job had to queue before starting. onWait must not block on
// locks held across a wait for the job's completion, or the wait
// deadlocks — engines use an atomic counter.
func (s *Scheduler) Submit(job func(), onWait func()) {
	s.submitted.Add(1)
	go func() {
		s.acquire(onWait)
		defer s.release()
		job()
	}()
}

// Run executes job under the pool's budget and blocks until it returns:
// the synchronous-merge path (Algorithm 1 runs its cascade inline, but a
// sharded store commits many cascades in parallel goroutines, which this
// keeps bounded). onWait follows the Submit contract.
func (s *Scheduler) Run(job func(), onWait func()) {
	s.submitted.Add(1)
	s.acquire(onWait)
	defer s.release()
	job()
}

// Stats is a snapshot of scheduler counters.
type Stats struct {
	// Submitted counts jobs handed to the pool (Submit and Run).
	Submitted int64
	// Waited counts jobs that found the pool saturated and queued.
	Waited int64
}

// Stats returns the scheduler counters.
func (s *Scheduler) Stats() Stats {
	return Stats{Submitted: s.submitted.Load(), Waited: s.waited.Load()}
}
