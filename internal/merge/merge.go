// Package merge provides the bounded worker pool behind every COLE
// background flush and merge.
//
// The engine used to spawn an unbounded goroutine per flush/merge, which
// is fine for one store but pathological for a sharded one: N shards ×
// L levels can put N·L run builds on the CPU at once, and at small scale
// the scheduling and page-cache churn makes sharded COLE* slower than a
// single engine. A Scheduler caps the number of *running* jobs at a fixed
// worker budget (default GOMAXPROCS); every level of every shard submits
// its jobs to the same pool, so aggregate merge work is bounded no matter
// how many partitions the store has.
//
// Slots are handed out by priority lane: L0 flushes (what a commit
// checkpoint blocks on) outrank L0-adjacent level merges, which outrank
// deep merges. A saturated pool therefore never makes a commit wait for
// CPU behind maintenance that no checkpoint needs yet. Long merges
// cooperate through Preempt: between chunks of work they ask whether a
// higher-priority job is queued and, if so, hand their slot over and
// re-queue — a narrow pool cannot be monopolized by one bottom-level
// merge for seconds while flushes starve (the stall COLE⁺ identifies).
//
// Submissions never block the caller: a job that cannot start immediately
// queues inside its own goroutine, and the queuing event is reported
// through the per-job onWait hook so engines can account back-pressure
// (core.Stats.MergeWaits). Determinism is unaffected — COLE*'s digests
// are checkpoint-based and independent of merge timing by construction
// (§5), so delaying (or preempting) a job only ever delays its commit
// checkpoint.
package merge

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Priority is a scheduler lane; numerically smaller is more urgent.
type Priority int

const (
	// PriorityFlush is the lane for L0 flushes and any other work a
	// commit checkpoint blocks on directly.
	PriorityFlush Priority = iota
	// PriorityMerge is the lane for L0-adjacent (L1-building) level
	// merges: the merges whose lag backs up the very next cascade.
	PriorityMerge
	// PriorityDeep is the lane for deeper level merges: big, slow, and
	// the last thing a commit should ever queue behind.
	PriorityDeep

	numLanes
)

// Scheduler is a bounded priority pool for background flush/merge jobs.
// The zero value is not usable; construct with New. A Scheduler has no
// shutdown: it holds no goroutines of its own, and callers join their
// jobs through the done channels they already own (Engine.Close waits on
// every in-flight merge).
type Scheduler struct {
	workers int

	mu      sync.Mutex
	free    int                       // unassigned slots
	waiters [numLanes][]chan struct{} // FIFO queues per lane, guarded by mu
	// waiting mirrors len(waiters[lane]) so Preempt's probe is two atomic
	// loads on the (overwhelmingly common) nothing-pending path instead
	// of a mutex acquisition per merge chunk.
	waiting [numLanes]atomic.Int64

	submitted atomic.Int64
	waited    atomic.Int64
	// partitionWaited counts queue waits by sibling partitions of one
	// fanned-out merge (SubmitPartition / Yield re-entry). Intentional
	// fan-out saturates the pool by design; keeping its waits out of
	// `waited` stops it polluting cross-shard back-pressure diagnosis.
	partitionWaited atomic.Int64
	// preempted counts chunked jobs that handed their slot to a queued
	// higher-priority job at a Preempt checkpoint.
	preempted atomic.Int64
}

// New creates a scheduler running at most `workers` jobs concurrently;
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{workers: workers, free: workers}
}

// Workers returns the pool's concurrency budget.
func (s *Scheduler) Workers() int { return s.workers }

// acquire takes a worker slot at the given priority, reporting (once)
// through counter/onWait if the pool was saturated and the job queued.
// A nil counter skips the wait accounting (intentional re-entry).
func (s *Scheduler) acquire(pri Priority, counter *atomic.Int64, onWait func()) {
	s.mu.Lock()
	if s.free > 0 {
		s.free--
		s.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	s.waiters[pri] = append(s.waiters[pri], ch)
	s.waiting[pri].Add(1)
	s.mu.Unlock()
	if counter != nil {
		counter.Add(1)
	}
	if onWait != nil {
		onWait()
	}
	// Slot ownership transfers on close: release() dequeues us before
	// closing, so the slot is never double-counted.
	<-ch
}

// release returns the calling job's slot, handing it directly to the
// most urgent waiter (FIFO within a lane) or back to the free pool.
func (s *Scheduler) release() {
	s.mu.Lock()
	for lane := 0; lane < int(numLanes); lane++ {
		if q := s.waiters[lane]; len(q) > 0 {
			ch := q[0]
			s.waiters[lane] = q[1:]
			s.waiting[lane].Add(-1)
			s.mu.Unlock()
			close(ch)
			return
		}
	}
	s.free++
	s.mu.Unlock()
}

// PendingAbove reports whether any job with a priority strictly more
// urgent than pri is queued for a slot. Lock-free (two atomic loads at
// the deepest lane), so chunked merges can probe it every few thousand
// entries without contending on the pool mutex.
func (s *Scheduler) PendingAbove(pri Priority) bool {
	for lane := Priority(0); lane < pri; lane++ {
		if s.waiting[lane].Load() > 0 {
			return true
		}
	}
	return false
}

// Preempt is the cooperative checkpoint of a chunked job running at
// priority pri: if a more urgent job is queued, the caller's slot is
// released to it and the caller re-queues in its own lane, returning
// true once it holds a slot again. Returns false immediately (without
// touching the pool mutex) when nothing more urgent waits. The re-entry
// wait is intentional and therefore uncounted back-pressure. Only call
// from inside a job started by Submit, Run, or SubmitPartition.
func (s *Scheduler) Preempt(pri Priority, onWait func()) bool {
	if !s.PendingAbove(pri) {
		return false
	}
	s.preempted.Add(1)
	s.release()
	s.acquire(pri, nil, onWait)
	return true
}

// Submit schedules job on the pool and returns immediately; the caller
// observes completion through whatever channel the job closes. onWait, if
// non-nil, is invoked once from the job's goroutine if the pool was full
// and the job had to queue before starting. onWait must not block on
// locks held across a wait for the job's completion, or the wait
// deadlocks — engines use an atomic counter.
func (s *Scheduler) Submit(job func(), pri Priority, onWait func()) {
	s.submitted.Add(1)
	go func() {
		s.acquire(pri, &s.waited, onWait)
		defer s.release()
		job()
	}()
}

// Run executes job under the pool's budget and blocks until it returns:
// the synchronous-merge path (Algorithm 1 runs its cascade inline, but a
// sharded store commits many cascades in parallel goroutines, which this
// keeps bounded). onWait follows the Submit contract.
func (s *Scheduler) Run(job func(), pri Priority, onWait func()) {
	s.submitted.Add(1)
	s.acquire(pri, &s.waited, onWait)
	defer s.release()
	job()
}

// SubmitPartition schedules one span of a partitioned merge on the pool
// and returns immediately. It differs from Submit only in accounting:
// a sibling partition queueing behind its own fan-out is expected, so
// its waits land in Stats.PartitionWaited instead of Stats.Waited.
// Spans run in their parent merge's lane. onWait follows the Submit
// contract.
func (s *Scheduler) SubmitPartition(job func(), pri Priority, onWait func()) {
	s.submitted.Add(1)
	go func() {
		s.acquire(pri, &s.partitionWaited, onWait)
		defer s.release()
		job()
	}()
}

// Yield releases the calling job's worker slot for the duration of
// wait, then re-acquires one at priority pri. A merge job that fans its
// spans out via SubmitPartition calls its join inside Yield: on a narrow
// pool the parent's slot is what lets its own spans run, so holding it
// across the join would deadlock. The re-acquisition wait is charged to
// Stats.PartitionWaited — it is fan-out bookkeeping, not back-pressure.
// Only call from inside a job started by Submit or Run.
func (s *Scheduler) Yield(pri Priority, wait func(), onWait func()) {
	s.release()
	wait()
	s.acquire(pri, &s.partitionWaited, onWait)
}

// Stats is a snapshot of scheduler counters.
type Stats struct {
	// Submitted counts jobs handed to the pool (Submit, Run, and
	// SubmitPartition).
	Submitted int64
	// Waited counts whole jobs that found the pool saturated and queued:
	// genuine cross-shard contention.
	Waited int64
	// PartitionWaited counts queue waits by sibling partitions of a
	// fanned-out merge (including the parent's Yield re-entry).
	PartitionWaited int64
	// Preempted counts slot handoffs at Preempt checkpoints: a chunked
	// merge paused so a queued flush (or shallower merge) could run.
	Preempted int64
}

// Stats returns the scheduler counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Submitted:       s.submitted.Load(),
		Waited:          s.waited.Load(),
		PartitionWaited: s.partitionWaited.Load(),
		Preempted:       s.preempted.Load(),
	}
}
