// Package workload generates benchmark traffic for the storage engines.
//
// Two generator families live here. The paper generators reproduce the
// evaluation's macro benchmarks (§8.1.3) — SmallBank and the YCSB-style
// KVStore from Blockbench, plus the provenance workload of §8.2.5 (a
// small base set updated continuously) — as chain.Tx streams for the
// transaction executor.
//
// The pluggable Spec API (spec.go, generators.go) is the scenario
// engine's substrate: a declarative Spec (key population, value size,
// distribution, read/write mix, duration, warm-up, concurrency, seed)
// resolved through a registry into a Generator that yields raw store
// operations. Built-ins cover uniform, zipfian (YCSB request skew), and
// hot-account (a small hot set takes most traffic) distributions; new
// access patterns register a Factory under a name and every experiment
// that sweeps workloads picks them up.
//
// All generators are deterministic given a seed, so identical workloads
// can be replayed across engines and across recovering nodes.
package workload

import (
	"fmt"
	"math/rand"

	"cole/internal/chain"
)

// Mix is a read/write transaction mix for the KVStore workload (§8.2.2).
type Mix int

// The three mixes of Figure 11.
const (
	ReadWrite Mix = iota // 50/50
	ReadOnly
	WriteOnly
)

// String names the mix like the paper's axis labels.
func (m Mix) String() string {
	switch m {
	case ReadOnly:
		return "RO"
	case ReadWrite:
		return "RW"
	case WriteOnly:
		return "WO"
	}
	return fmt.Sprintf("Mix(%d)", int(m))
}

// SmallBank generates account-transfer transactions: six operations with
// equal probability over a fixed account population.
type SmallBank struct {
	rng      *rand.Rand
	accounts int
}

// NewSmallBank creates a generator over `accounts` accounts.
func NewSmallBank(seed int64, accounts int) *SmallBank {
	if accounts < 2 {
		accounts = 2
	}
	return &SmallBank{rng: rand.New(rand.NewSource(seed)), accounts: accounts}
}

func (s *SmallBank) account() string {
	return fmt.Sprintf("acct%06d", s.rng.Intn(s.accounts))
}

// Next returns the next transaction.
func (s *SmallBank) Next() chain.Tx {
	a := s.account()
	b := s.account()
	for b == a {
		b = s.account()
	}
	amt := uint64(s.rng.Intn(100) + 1)
	switch s.rng.Intn(6) {
	case 0:
		return chain.Tx{Kind: chain.TxTransactSavings, A: a, Amount: amt}
	case 1:
		return chain.Tx{Kind: chain.TxDepositChecking, A: a, Amount: amt}
	case 2:
		return chain.Tx{Kind: chain.TxSendPayment, A: a, B: b, Amount: amt}
	case 3:
		return chain.Tx{Kind: chain.TxWriteCheck, A: a, Amount: amt}
	case 4:
		return chain.Tx{Kind: chain.TxAmalgamate, A: a, B: b}
	default:
		return chain.Tx{Kind: chain.TxQuery, A: a}
	}
}

// Block returns the next n transactions.
func (s *SmallBank) Block(n int) []chain.Tx {
	txs := make([]chain.Tx, n)
	for i := range txs {
		txs[i] = s.Next()
	}
	return txs
}

// KVStore generates YCSB-style transactions: a Zipfian key popularity
// distribution over a fixed record population, with a configurable
// read/write mix.
type KVStore struct {
	rng     *rand.Rand
	zipf    *rand.Zipf
	records int
	mix     Mix
	seq     uint64
}

// NewKVStore creates a generator over `records` keys. The Zipf skew
// (s=1.01, v=1) matches YCSB's default "zipfian" request distribution.
func NewKVStore(seed int64, records int, mix Mix) *KVStore {
	if records < 1 {
		records = 1
	}
	rng := rand.New(rand.NewSource(seed))
	return &KVStore{
		rng:     rng,
		zipf:    rand.NewZipf(rng, 1.01, 1, uint64(records-1)),
		records: records,
		mix:     mix,
	}
}

func kvKey(i uint64) string { return fmt.Sprintf("user%08d", i) }

// LoadPhase returns the YCSB loading-phase transactions: one write per
// record, inserting the base data.
func (k *KVStore) LoadPhase() []chain.Tx {
	txs := make([]chain.Tx, k.records)
	for i := range txs {
		txs[i] = chain.Tx{Kind: chain.TxKVWrite, A: kvKey(uint64(i)), Amount: uint64(i)}
	}
	return txs
}

// Next returns the next running-phase transaction.
func (k *KVStore) Next() chain.Tx {
	key := kvKey(k.zipf.Uint64())
	write := false
	switch k.mix {
	case WriteOnly:
		write = true
	case ReadWrite:
		write = k.rng.Intn(2) == 0
	}
	if write {
		k.seq++
		return chain.Tx{Kind: chain.TxKVWrite, A: key, Amount: k.seq}
	}
	return chain.Tx{Kind: chain.TxKVRead, A: key}
}

// Block returns the next n transactions.
func (k *KVStore) Block(n int) []chain.Tx {
	txs := make([]chain.Tx, n)
	for i := range txs {
		txs[i] = k.Next()
	}
	return txs
}

// Provenance builds the §8.2.5 workload: `base` states written once, then
// continuous uniform updates over them, so every state accumulates a deep
// version history.
type Provenance struct {
	rng  *rand.Rand
	base int
	seq  uint64
}

// NewProvenance creates the generator (the paper uses base = 100).
func NewProvenance(seed int64, base int) *Provenance {
	if base < 1 {
		base = 1
	}
	return &Provenance{rng: rand.New(rand.NewSource(seed)), base: base}
}

// ProvKey returns the i-th base key's identifier.
func ProvKey(i int) string { return fmt.Sprintf("prov%04d", i) }

// LoadPhase writes the base states.
func (p *Provenance) LoadPhase() []chain.Tx {
	txs := make([]chain.Tx, p.base)
	for i := range txs {
		txs[i] = chain.Tx{Kind: chain.TxKVWrite, A: ProvKey(i), Amount: 0}
	}
	return txs
}

// Next returns the next update transaction.
func (p *Provenance) Next() chain.Tx {
	p.seq++
	return chain.Tx{Kind: chain.TxKVWrite, A: ProvKey(p.rng.Intn(p.base)), Amount: p.seq}
}

// Block returns the next n transactions.
func (p *Provenance) Block(n int) []chain.Tx {
	txs := make([]chain.Tx, n)
	for i := range txs {
		txs[i] = p.Next()
	}
	return txs
}
