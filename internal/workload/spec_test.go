package workload

import (
	"strings"
	"testing"

	"cole/internal/types"
)

func TestSpecDefaultsAndLabel(t *testing.T) {
	s := Spec{}.WithDefaults()
	if s.Name != "uniform" || s.Keys != 1000 || s.ValueSize != types.ValueSize {
		t.Fatalf("defaults: %+v", s)
	}
	if s.TxPerBlock == 0 || s.Duration == 0 || s.Concurrency == 0 || s.Seed == 0 {
		t.Fatalf("harness defaults unset: %+v", s)
	}
	if got := (Spec{Name: "zipfian", ReadFraction: 0.5}).Label(); got != "zipfian/r50" {
		t.Fatalf("label %q", got)
	}
	if got := (Spec{Name: "hotaccount", ReadFraction: 0.95}).Label(); got != "hotaccount/r95" {
		t.Fatalf("label %q", got)
	}
}

func TestRegistryNamesAndUnknown(t *testing.T) {
	names := Names()
	for _, want := range []string{"hotaccount", "uniform", "zipfian"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in %q missing from %v", want, names)
		}
	}
	if _, err := New(Spec{Name: "no-such-distribution"}); err == nil || !strings.Contains(err.Error(), "unknown generator") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	Register("uniform", nil)
}

func TestSpecGeneratorsDeterministicPerSeed(t *testing.T) {
	// For every registered generator: two instances from the same spec
	// produce identical load and run streams; a different seed produces
	// a different stream.
	for _, name := range Names() {
		spec := Spec{Name: name, Keys: 128, ReadFraction: 0.3, Seed: 11}
		a, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != name {
			t.Fatalf("generator reports name %q", a.Name())
		}
		la, lb := a.Load(), b.Load()
		if len(la) != len(lb) || len(la) != spec.Keys {
			t.Fatalf("%s: load sizes %d/%d", name, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("%s: load diverged at %d", name, i)
			}
		}
		for i := 0; i < 2000; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("%s: run streams diverged at op %d", name, i)
			}
		}

		reseeded := spec
		reseeded.Seed = 12
		c, err := New(reseeded)
		if err != nil {
			t.Fatal(err)
		}
		same := 0
		for i := 0; i < 200; i++ {
			if a.Next() == c.Next() {
				same++
			}
		}
		if same == 200 {
			t.Fatalf("%s: different seeds produced identical streams", name)
		}
	}
}

func TestSpecLoadCoversPopulation(t *testing.T) {
	g, err := New(Spec{Name: "zipfian", Keys: 300})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[types.Address]bool{}
	for _, u := range g.Load() {
		seen[u.Addr] = true
	}
	if len(seen) != 300 {
		t.Fatalf("load covered %d distinct keys, want 300", len(seen))
	}
	for i := uint64(0); i < 300; i++ {
		if !seen[Key(i)] {
			t.Fatalf("key %d missing from load", i)
		}
	}
}

func TestSpecOpsStayInPopulationAndHonorMix(t *testing.T) {
	for _, name := range Names() {
		g, err := New(Spec{Name: name, Keys: 50, ReadFraction: 0.5, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		valid := map[types.Address]bool{}
		for i := uint64(0); i < 50; i++ {
			valid[Key(i)] = true
		}
		reads := 0
		for i := 0; i < 4000; i++ {
			op := g.Next()
			if !valid[op.Addr] {
				t.Fatalf("%s: op key outside the population", name)
			}
			if op.Read {
				reads++
				if op.Value != (types.Value{}) {
					t.Fatalf("%s: read carries a value", name)
				}
			}
		}
		// Binomial(4000, 0.5): ±5 sigma ≈ ±158.
		if reads < 1800 || reads > 2200 {
			t.Fatalf("%s: %d/4000 reads for ReadFraction 0.5", name, reads)
		}
	}
}

// topShare returns the traffic share of the hottest `frac` of the key
// population over n samples.
func topShare(t *testing.T, g Generator, keys int, frac float64, n int) float64 {
	t.Helper()
	counts := map[types.Address]int{}
	for i := 0; i < n; i++ {
		counts[g.Next().Addr]++
	}
	hot := 0
	hotKeys := int(float64(keys) * frac)
	if hotKeys < 1 {
		hotKeys = 1
	}
	// The built-in distributions concentrate mass on the lowest indexes,
	// so the hottest keys are Key(0..hotKeys).
	for i := uint64(0); i < uint64(hotKeys); i++ {
		hot += counts[Key(i)]
	}
	return float64(hot) / float64(n)
}

func TestZipfianSkewTop1Percent(t *testing.T) {
	// YCSB's zipfian (s=1.01, v=1) over 10k keys puts roughly half the
	// traffic on the hottest 1% of keys. The exact share for finite n is
	// sum-of-harmonics; assert a band wide enough for sampling noise but
	// far from uniform (where 1% of keys would take 1% of traffic).
	spec := Spec{Name: "zipfian", Keys: 10_000, Seed: 21}
	g, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	share := topShare(t, g, spec.Keys, 0.01, 200_000)
	if share < 0.35 || share > 0.75 {
		t.Fatalf("top-1%% share %.3f outside [0.35, 0.75]", share)
	}
	// Deterministic per seed: an identical generator reproduces the
	// share exactly.
	h, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again := topShare(t, h, spec.Keys, 0.01, 200_000); again != share {
		t.Fatalf("same seed, different skew: %.6f vs %.6f", again, share)
	}
}

func TestHotAccountShareMatchesSpec(t *testing.T) {
	// The hot set (HotKeys of the population) must take ≈HotOps of the
	// traffic — that is the distribution's defining contract.
	spec := Spec{Name: "hotaccount", Keys: 1000, HotKeys: 0.01, HotOps: 0.9, Seed: 5}
	g, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	share := topShare(t, g, spec.Keys, spec.HotKeys, 100_000)
	// Binomial(100k, 0.9) is tight; ±0.01 is ~10 sigma.
	if share < 0.89 || share > 0.91 {
		t.Fatalf("hot-set share %.4f, want ≈0.90", share)
	}
}

func TestUniformSpreadsTraffic(t *testing.T) {
	g, err := New(Spec{Name: "uniform", Keys: 1000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if share := topShare(t, g, 1000, 0.01, 100_000); share > 0.03 {
		t.Fatalf("uniform top-1%% share %.4f — skew where none belongs", share)
	}
}

func TestWriteSequencesDistinct(t *testing.T) {
	// Written values embed a monotone sequence number, so re-writing the
	// same key in the same block still produces distinct entries — the
	// property commit-level dedup tests rely on.
	g, err := New(Spec{Name: "uniform", Keys: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[types.Value]bool{}
	for i := 0; i < 500; i++ {
		op := g.Next()
		if op.Read {
			continue
		}
		if seen[op.Value] {
			t.Fatalf("duplicate write payload at op %d", i)
		}
		seen[op.Value] = true
	}
}
