package workload

import (
	"encoding/binary"
	"math/rand"

	"cole/internal/types"
)

// The built-in Spec-driven generators: a uniform baseline, the YCSB
// zipfian request distribution, and a hot-account pattern (a small hot
// set takes most of the traffic — the PoS/blockchain access shape where
// a few contracts and exchange accounts dominate).
func init() {
	Register("uniform", func(spec Spec) (Generator, error) {
		return newKVGen(spec, func(rng *rand.Rand) func() uint64 {
			n := uint64(spec.Keys)
			return func() uint64 { return rng.Uint64() % n }
		}), nil
	})
	Register("zipfian", func(spec Spec) (Generator, error) {
		return newKVGen(spec, func(rng *rand.Rand) func() uint64 {
			z := rand.NewZipf(rng, spec.ZipfS, spec.ZipfV, uint64(spec.Keys-1))
			return z.Uint64
		}), nil
	})
	Register("hotaccount", func(spec Spec) (Generator, error) {
		return newKVGen(spec, func(rng *rand.Rand) func() uint64 {
			hot := uint64(float64(spec.Keys) * spec.HotKeys)
			if hot < 1 {
				hot = 1
			}
			cold := uint64(spec.Keys) - hot
			return func() uint64 {
				if cold == 0 || rng.Float64() < spec.HotOps {
					return rng.Uint64() % hot
				}
				return hot + rng.Uint64()%cold
			}
		}), nil
	})
}

// loadSeedSalt decouples the load phase's value stream from the running
// phase's, so generating (or skipping) the load never shifts the run.
const loadSeedSalt = 0x0c01e_10ad

// kvGen is the shared machinery of the Spec-driven key-value
// generators: a sampler picks key indexes, the mix draw decides read vs
// write, and written values carry a deterministic ValueSize payload.
type kvGen struct {
	spec Spec
	rng  *rand.Rand
	pick func() uint64
	buf  []byte // payload scratch, spec.ValueSize bytes
	seq  uint64
}

func newKVGen(spec Spec, sampler func(rng *rand.Rand) func() uint64) *kvGen {
	rng := rand.New(rand.NewSource(spec.Seed))
	return &kvGen{
		spec: spec,
		rng:  rng,
		pick: sampler(rng),
		buf:  make([]byte, spec.ValueSize),
	}
}

// Name implements Generator.
func (g *kvGen) Name() string { return g.spec.Name }

// Key returns the address of the i-th key of the population.
func Key(i uint64) types.Address { return types.AddressFromUint64(i) }

// Load implements Generator: one write per key of the population, with
// payloads drawn from a salted seed so the running stream is unchanged
// whether or not the caller applies the load.
func (g *kvGen) Load() []types.Update {
	rng := rand.New(rand.NewSource(g.spec.Seed ^ loadSeedSalt))
	buf := make([]byte, g.spec.ValueSize)
	updates := make([]types.Update, g.spec.Keys)
	for i := range updates {
		updates[i] = types.Update{Addr: Key(uint64(i)), Value: payload(rng, buf, uint64(i), 0)}
	}
	return updates
}

// Next implements Generator. Draw order is fixed (mix, key, value), so
// the stream is identical for every generator built from the same spec.
func (g *kvGen) Next() Op {
	read := g.rng.Float64() < g.spec.ReadFraction
	idx := g.pick()
	if read {
		return Op{Addr: Key(idx), Read: true}
	}
	g.seq++
	return Op{Addr: Key(idx), Value: payload(g.rng, g.buf, idx, g.seq)}
}

// payload fills buf with a deterministic pseudo-random value of the
// spec's logical size — the generation cost of a real ValueSize-byte
// write — then folds it into the fixed-width stored value (oversized
// payloads are hashed down by ValueFromBytes).
func payload(rng *rand.Rand, buf []byte, key, seq uint64) types.Value {
	rng.Read(buf)
	if len(buf) >= 8 {
		binary.BigEndian.PutUint64(buf, seq)
	}
	if len(buf) >= 16 {
		binary.BigEndian.PutUint64(buf[8:], key)
	}
	return types.ValueFromBytes(buf)
}
