package workload

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cole/internal/types"
)

// Spec declares a workload: the key population and its access
// distribution, the read/write mix, the value payload size, and how the
// open-loop harness should drive it (duration, warm-up, concurrency,
// target rate, block size, seed). A Spec is pure data — New resolves it
// against the generator registry — so workloads can be enumerated,
// serialized into benchmark reports, and swept as a matrix.
type Spec struct {
	// Name selects a registered generator ("uniform", "zipfian",
	// "hotaccount", …); Names() lists what is available.
	Name string
	// Keys is the key population: the base records written by the load
	// phase and the domain every operation draws from.
	Keys int
	// ValueSize is the logical value payload in bytes. Stored values are
	// fixed 32-byte states; larger payloads are generated then hashed
	// down (types.ValueFromBytes), so the generation cost is paid but
	// the storage accounting stays entry-sized.
	ValueSize int
	// ReadFraction is the fraction of operations that are point reads
	// (0 = write-only, 1 = read-only).
	ReadFraction float64
	// ZipfS and ZipfV shape the zipfian distribution (defaults match
	// YCSB's request distribution: s = 1.01, v = 1).
	ZipfS, ZipfV float64
	// HotKeys is the fraction of the population forming the hot set and
	// HotOps the fraction of operations routed to it (hotaccount only).
	// Defaults: 1% of the keys take 90% of the traffic.
	HotKeys, HotOps float64
	// TxPerBlock is how many write operations fill one committed block.
	TxPerBlock int
	// Duration is the measured open-loop run length; WarmUp runs the
	// identical loop first without recording.
	Duration time.Duration
	WarmUp   time.Duration
	// Concurrency is the number of concurrent read workers.
	Concurrency int
	// Rate is the target operation arrival rate in ops/second. 0 runs
	// closed-loop (as fast as the store allows); > 0 schedules issue
	// times up front so recorded latency includes queueing delay — the
	// open-loop convention that makes tail latency honest under
	// saturation (no coordinated omission).
	Rate float64
	// Seed makes every generated key/value stream deterministic.
	Seed int64
}

// WithDefaults fills unset fields with smoke-scale values.
func (s Spec) WithDefaults() Spec {
	if s.Name == "" {
		s.Name = "uniform"
	}
	if s.Keys == 0 {
		s.Keys = 1000
	}
	if s.ValueSize == 0 {
		s.ValueSize = types.ValueSize
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.01
	}
	if s.ZipfV == 0 {
		s.ZipfV = 1
	}
	if s.HotKeys == 0 {
		s.HotKeys = 0.01
	}
	if s.HotOps == 0 {
		s.HotOps = 0.9
	}
	if s.TxPerBlock == 0 {
		s.TxPerBlock = 100
	}
	if s.Duration == 0 {
		s.Duration = 2 * time.Second
	}
	if s.WarmUp == 0 {
		s.WarmUp = 200 * time.Millisecond
	}
	if s.Concurrency == 0 {
		s.Concurrency = 4
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	return s
}

// Label names the workload row in reports: generator plus read mix,
// e.g. "zipfian/r50".
func (s Spec) Label() string {
	return fmt.Sprintf("%s/r%.0f", s.Name, s.ReadFraction*100)
}

// Op is one generated operation against a store: a point read of Addr,
// or a write of Value to Addr.
type Op struct {
	Addr  types.Address
	Value types.Value
	Read  bool
}

// Generator yields a deterministic operation stream for one Spec. A
// generator is single-goroutine state; the harness owns exactly one per
// run and fans the resulting operations out itself, so the generated
// key/value stream is identical for every run with the same seed.
type Generator interface {
	// Name returns the registered generator name.
	Name() string
	// Load returns the base-population writes applied (in blocks) before
	// the clock starts, YCSB load/run style.
	Load() []types.Update
	// Next returns the next operation of the running phase.
	Next() Op
}

// Factory builds a Generator from a defaulted Spec.
type Factory func(spec Spec) (Generator, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named generator factory. Registering a taken name
// panics: workload names appear in reports and CLI flags, so a silent
// override would corrupt cross-run comparisons.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: generator %q registered twice", name))
	}
	registry[name] = f
}

// New resolves spec.Name against the registry and builds the generator
// from the defaulted spec.
func New(spec Spec) (Generator, error) {
	spec = spec.WithDefaults()
	registryMu.RLock()
	f, ok := registry[spec.Name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workload: unknown generator %q (have: %v)", spec.Name, Names())
	}
	return f(spec)
}

// Names lists the registered generator names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
