package workload

import (
	"testing"

	"cole/internal/chain"
)

func TestSmallBankDeterministic(t *testing.T) {
	a := NewSmallBank(1, 100)
	b := NewSmallBank(1, 100)
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("generators diverged at tx %d", i)
		}
	}
}

func TestSmallBankOpMixCoversAllKinds(t *testing.T) {
	g := NewSmallBank(2, 100)
	seen := map[chain.TxKind]int{}
	for i := 0; i < 6000; i++ {
		seen[g.Next().Kind]++
	}
	for _, k := range []chain.TxKind{
		chain.TxTransactSavings, chain.TxDepositChecking, chain.TxSendPayment,
		chain.TxWriteCheck, chain.TxAmalgamate, chain.TxQuery,
	} {
		if seen[k] < 500 {
			t.Fatalf("op %v only %d/6000 times; expected ~1/6", k, seen[k])
		}
	}
}

func TestSmallBankPartiesDistinct(t *testing.T) {
	g := NewSmallBank(3, 2) // tiny population stresses the retry loop
	for i := 0; i < 200; i++ {
		tx := g.Next()
		if tx.Kind == chain.TxSendPayment || tx.Kind == chain.TxAmalgamate {
			if tx.A == tx.B {
				t.Fatal("two-party ops must use distinct accounts")
			}
		}
	}
}

func TestSmallBankBlockSize(t *testing.T) {
	g := NewSmallBank(4, 10)
	if len(g.Block(37)) != 37 {
		t.Fatal("block size mismatch")
	}
}

func TestKVStoreLoadPhaseCoversAllRecords(t *testing.T) {
	g := NewKVStore(5, 123, ReadWrite)
	load := g.LoadPhase()
	if len(load) != 123 {
		t.Fatalf("load phase %d txs", len(load))
	}
	keys := map[string]bool{}
	for _, tx := range load {
		if tx.Kind != chain.TxKVWrite {
			t.Fatal("load phase must write")
		}
		keys[tx.A] = true
	}
	if len(keys) != 123 {
		t.Fatalf("load phase covered %d distinct keys", len(keys))
	}
}

func TestKVStoreRunningKeysWithinPopulation(t *testing.T) {
	g := NewKVStore(6, 50, WriteOnly)
	valid := map[string]bool{}
	for _, tx := range g.LoadPhase() {
		valid[tx.A] = true
	}
	for i := 0; i < 1000; i++ {
		if !valid[g.Next().A] {
			t.Fatal("running phase key outside loaded population")
		}
	}
}

func TestKVStoreWriteSequenceMonotone(t *testing.T) {
	g := NewKVStore(7, 100, WriteOnly)
	last := uint64(0)
	for i := 0; i < 200; i++ {
		tx := g.Next()
		if tx.Amount <= last {
			t.Fatal("write payloads must be distinct and increasing")
		}
		last = tx.Amount
	}
}

func TestKVStoreDeterministicAllMixes(t *testing.T) {
	// Two generators from the same seed must agree on the load phase and
	// the whole running stream, for every read/write mix: replaying the
	// same workload against different engines is how cross-system
	// comparisons stay apples-to-apples.
	for _, mix := range []Mix{ReadWrite, ReadOnly, WriteOnly} {
		a := NewKVStore(9, 64, mix)
		b := NewKVStore(9, 64, mix)
		la, lb := a.LoadPhase(), b.LoadPhase()
		if len(la) != len(lb) {
			t.Fatalf("%v: load phases differ in length", mix)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("%v: load phases diverged at %d", mix, i)
			}
		}
		for i := 0; i < 500; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("%v: generators diverged at tx %d", mix, i)
			}
		}
	}
}

func TestMixString(t *testing.T) {
	if ReadOnly.String() != "RO" || ReadWrite.String() != "RW" || WriteOnly.String() != "WO" {
		t.Fatal("mix labels must match the paper's axis labels")
	}
}

func TestProvenanceDeterministicAndBounded(t *testing.T) {
	a := NewProvenance(8, 25)
	b := NewProvenance(8, 25)
	_ = a.LoadPhase()
	_ = b.LoadPhase()
	for i := 0; i < 300; i++ {
		ta, tb := a.Next(), b.Next()
		if ta != tb {
			t.Fatalf("diverged at %d", i)
		}
		if ta.Kind != chain.TxKVWrite {
			t.Fatal("provenance updates must be writes")
		}
	}
}

func TestDegenerateSizes(t *testing.T) {
	// Constructors clamp degenerate populations rather than panicking.
	NewSmallBank(1, 0).Next()
	NewKVStore(1, 0, ReadWrite).Next()
	NewProvenance(1, 0).Next()
}
