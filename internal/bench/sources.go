package bench

import (
	"cole/internal/chain"
	"cole/internal/workload"
)

// newSmallBankSource adapts the SmallBank generator.
func newSmallBankSource(cfg Config) blockSource {
	return workload.NewSmallBank(cfg.Seed, cfg.Accounts)
}

// newKVStoreSource adapts the KVStore generator, returning the loading
// phase separately.
func newKVStoreSource(cfg Config) (blockSource, []chain.Tx) {
	g := workload.NewKVStore(cfg.Seed, cfg.Records, workload.Mix(cfg.Mix))
	return g, g.LoadPhase()
}

// newProvenanceSource adapts the provenance workload (§8.2.5).
func newProvenanceSource(cfg Config, base int) (blockSource, []chain.Tx) {
	g := workload.NewProvenance(cfg.Seed, base)
	return g, g.LoadPhase()
}
