package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cole"
	"cole/internal/types"
)

// readWindow is how long each read-scaling measurement samples; long
// enough to amortize goroutine spawn/join, short enough for CI smoke.
const readWindow = 400 * time.Millisecond

// ReadScaling measures point-read throughput versus reader-goroutine
// count on a single-shard store, for COLE and COLE*: the read path is
// lock-free over atomically-published views, so read TPS should scale
// with reader count up to the core count, independently of the write
// path. Two phases per reader count: pure reads on an idle store, and a
// mixed phase where a writer keeps committing blocks (with their flush
// and merge cascades) while the readers run — the interference the
// snapshot read path is designed to eliminate. bloomskips counts runs
// that point lookups skipped via their Bloom filters.
func ReadScaling(cfg Config, readers []int, scratch string) (*Table, error) {
	cfg = cfg.Defaults()
	if len(readers) == 0 {
		readers = []int{1, 2, 4, 8}
	}
	t := &Table{
		Title:   "Read scaling: point-read throughput vs reader goroutines (single shard)",
		Columns: []string{"readers", "system", "read(TPS)", "speedup", "mixed-read(TPS)", "mixed-write(TPS)", "bloomskips"},
		Notes: []string{
			fmt.Sprintf("each measurement samples %s of uniform point reads over the written address population", readWindow),
			"reads are lock-free over the engine's published views; speedup is vs the 1-reader run of the same system",
			"all pure-read points sample the same store state (the sweep runs before any mixed phase mutates it)",
			"the mixed phase runs one writer committing blocks (flushes/merges included) concurrently with the readers",
		},
	}
	for _, sys := range []System{SysCOLE, SysCOLEAsync} {
		res, err := readScaleSystem(sys, cfg, readers, scratch)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sys, err)
		}
		var base float64
		for _, r := range res {
			if base == 0 {
				base = r.ReadTPS
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(r.Readers), string(sys),
				fmt.Sprintf("%.0f", r.ReadTPS),
				fmt.Sprintf("%.2fx", r.ReadTPS/base),
				fmt.Sprintf("%.0f", r.MixedReadTPS),
				fmt.Sprintf("%.0f", r.MixedWriteTPS),
				fmt.Sprint(r.BloomSkips),
			})
			t.Results = append(t.Results, r)
		}
	}
	return t, nil
}

// readScaleSystem populates one engine and sweeps the reader counts.
func readScaleSystem(sys System, cfg Config, readers []int, scratch string) ([]Result, error) {
	dir, err := tempDir(scratch, "readscale")
	if err != nil {
		return nil, err
	}
	defer cleanup(dir)
	// The sweep drives the store purely through the cole.DB interface:
	// the measurement only needs the surface every backend shares.
	var e cole.DB
	e, err = cole.Open(cole.Options{
		Dir:          dir,
		MemCapacity:  cfg.MemCap,
		SizeRatio:    cfg.SizeRatio,
		Fanout:       cfg.Fanout,
		BloomFP:      cfg.BloomFP,
		AsyncMerge:   sys == SysCOLEAsync,
		MergeWorkers: cfg.MergeWorkers,
	})
	if err != nil {
		return nil, err
	}
	defer e.Close()

	// Populate: Blocks × TxPerBlock uniform updates over Records addresses,
	// so lookups hit a multi-level structure with L0 + on-disk runs.
	rng := rand.New(rand.NewSource(cfg.Seed))
	addrs := make([]types.Address, cfg.Records)
	for i := range addrs {
		addrs[i] = types.AddressFromUint64(uint64(i))
	}
	height := uint64(0)
	writeBlock := func() error {
		height++
		if err := e.BeginBlock(height); err != nil {
			return err
		}
		upd := make([]types.Update, cfg.TxPerBlock)
		for i := range upd {
			upd[i] = types.Update{
				Addr:  addrs[rng.Intn(len(addrs))],
				Value: types.ValueFromUint64(rng.Uint64()),
			}
		}
		if err := e.PutBatch(upd); err != nil {
			return err
		}
		_, err := e.Commit()
		return err
	}
	for b := 0; b < cfg.Blocks; b++ {
		if err := writeBlock(); err != nil {
			return nil, err
		}
	}

	// Pure-read sweep first, with the write path idle: every reader count
	// measures the SAME store state, so the speedup column isolates
	// read-path scaling (the mixed phases below grow the structure).
	out := make([]Result, len(readers))
	for i, n := range readers {
		skipsBefore := e.Stats().BloomSkips
		readTPS, err := measureReads(e, addrs, n)
		if err != nil {
			return nil, err
		}
		out[i] = Result{
			System:     sys,
			Workload:   "pointread",
			Readers:    n,
			ReadTPS:    readTPS,
			BloomSkips: e.Stats().BloomSkips - skipsBefore,
		}
	}
	for i, n := range readers {
		// Mixed phase: one writer committing blocks while the readers run.
		var (
			writeOps  atomic.Int64
			writerErr error
			stopWrite = make(chan struct{})
			writerWG  sync.WaitGroup
		)
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for {
				select {
				case <-stopWrite:
					return
				default:
				}
				if err := writeBlock(); err != nil {
					writerErr = err
					return
				}
				writeOps.Add(int64(cfg.TxPerBlock))
			}
		}()
		mixedStart := time.Now()
		mixedTPS, err := measureReads(e, addrs, n)
		mixedDur := time.Since(mixedStart)
		close(stopWrite)
		writerWG.Wait()
		if err != nil {
			return nil, err
		}
		if writerErr != nil {
			return nil, writerErr
		}
		out[i].MixedReadTPS = mixedTPS
		out[i].MixedWriteTPS = float64(writeOps.Load()) / mixedDur.Seconds()
	}
	return out, nil
}

// measureReads runs n goroutines issuing uniform point reads for
// readWindow and returns the aggregate reads/second.
func measureReads(e cole.DB, addrs []types.Address, n int) (float64, error) {
	var (
		ops     atomic.Int64
		firstMu sync.Mutex
		first   error
		stop    = make(chan struct{})
		wg      sync.WaitGroup
	)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			local := int64(0)
			defer func() { ops.Add(local) }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := addrs[r.Intn(len(addrs))]
				if _, _, err := e.Get(a); err != nil {
					firstMu.Lock()
					if first == nil {
						first = err
					}
					firstMu.Unlock()
					return
				}
				local++
			}
		}(int64(g + 1))
	}
	start := time.Now()
	time.Sleep(readWindow)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if first != nil {
		return 0, first
	}
	return float64(ops.Load()) / elapsed.Seconds(), nil
}
