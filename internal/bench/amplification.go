package bench

import (
	"cole/internal/core"
	"cole/internal/types"
)

// Amplification is the maintenance-cost report of one run, derived
// entirely from the engine's own counters (core.Stats) and its on-disk
// footprint (core.StorageBreakdown) — no harness-side byte accounting
// to drift out of sync with the engine:
//
//   - Write amplification: physical bytes written by L0 flushes and
//     level merges (FlushBytes + MergeBytes) over the user bytes
//     ingested (Puts × EntrySize). 1.0 means every entry was written
//     exactly once (flushed, never re-merged); each level a generation
//     of entries cascades through adds ~1×. Batched commits coalesce
//     duplicate addresses inside a block, so hot-key workloads can land
//     below 1: the batch absorbed write traffic before it reached disk.
//   - Read amplification: physical 4 KiB page reads (PageReads) per
//     logical point lookup (Gets). Cache hits do not count — this is
//     the IO a read actually cost, so a hot cache drives it toward 0.
//   - Space amplification: total on-disk bytes (data + index + Merkle)
//     over the logical live bytes (retained entries × EntrySize). COLE
//     retains every version, so the live set is all versions ever
//     committed; the overhead is learned-index and Merkle metadata.
type Amplification struct {
	Write float64
	Read  float64
	Space float64
	// The raw accounting behind the factors, kept in the report so rows
	// from different hosts/configurations stay comparable.
	UserBytes     int64 // logical bytes ingested (Puts × EntrySize)
	FlushedBytes  int64 // physical flush volume
	MergedBytes   int64 // physical merge volume
	LogicalReads  int64 // point lookups served
	PhysicalReads int64 // 4 KiB page reads those lookups cost
	LiveBytes     int64 // retained entries × EntrySize
	DiskBytes     int64 // data + index on disk
}

// ComputeAmplification derives the three factors from engine counters.
// Stats must be cumulative over the run being reported (take deltas
// first when reusing a store), and the store should be flushed so the
// footprint covers all ingested data.
func ComputeAmplification(st core.Stats, sb core.StorageBreakdown) Amplification {
	a := Amplification{
		UserBytes:     st.Puts * types.EntrySize,
		FlushedBytes:  st.FlushBytes,
		MergedBytes:   st.MergeBytes,
		LogicalReads:  st.Gets,
		PhysicalReads: st.PageReads,
		LiveBytes:     sb.Entries * types.EntrySize,
		DiskBytes:     sb.DataBytes + sb.IndexBytes,
	}
	if a.UserBytes > 0 {
		a.Write = float64(a.FlushedBytes+a.MergedBytes) / float64(a.UserBytes)
	}
	if a.LogicalReads > 0 {
		a.Read = float64(a.PhysicalReads) / float64(a.LogicalReads)
	}
	if a.LiveBytes > 0 {
		a.Space = float64(a.DiskBytes) / float64(a.LiveBytes)
	}
	return a
}

// statsDelta returns now's counters less a baseline snapshot — the
// Stats slice attributable to the window between the two.
func statsDelta(base, now core.Stats) core.Stats {
	now.Puts -= base.Puts
	now.Gets -= base.Gets
	now.ProvQueries -= base.ProvQueries
	now.Flushes -= base.Flushes
	now.Merges -= base.Merges
	now.BloomSkips -= base.BloomSkips
	now.MergeWaits -= base.MergeWaits
	now.PartitionWaits -= base.PartitionWaits
	now.FlushBytes -= base.FlushBytes
	now.MergeBytes -= base.MergeBytes
	now.MergeNanos -= base.MergeNanos
	now.Commits -= base.Commits
	now.CommitNanos -= base.CommitNanos
	now.StallNanos -= base.StallNanos
	now.PaceNanos -= base.PaceNanos
	now.PaceSleeps -= base.PaceSleeps
	now.Preemptions -= base.Preemptions
	now.PageReads -= base.PageReads
	now.CacheHits -= base.CacheHits
	now.SeqReads -= base.SeqReads
	now.TraceDropped -= base.TraceDropped
	// MaxCommitNanos is a high-water mark, not a counter: an unchanged
	// mark means no commit in the window set a new worst, so the window
	// owns none; a raised mark was set by a commit inside the window.
	if now.MaxCommitNanos == base.MaxCommitNanos {
		now.MaxCommitNanos = 0
	}
	// The histogram delta subtracts per bucket, so the window keeps its
	// own latency distribution (a Stats built by hand may carry none).
	if now.Hist != nil {
		now.Hist = now.Hist.Delta(base.Hist)
	}
	return now
}
