package bench

import (
	"fmt"
	"testing"

	"cole"
	"cole/internal/core"
	"cole/internal/types"
)

func TestComputeAmplificationFormulas(t *testing.T) {
	// Hand-derived: 100 puts of EntrySize bytes flushed once (no merges)
	// is WA = 1; 400 page reads over 200 gets is RA = 2; a disk footprint
	// of 1.5× the live bytes is SA = 1.5.
	st := core.Stats{
		Puts:       100,
		Gets:       200,
		FlushBytes: 100 * types.EntrySize,
		MergeBytes: 0,
		PageReads:  400,
	}
	sb := core.StorageBreakdown{
		Entries:    100,
		DataBytes:  100 * types.EntrySize,
		IndexBytes: 50 * types.EntrySize,
	}
	a := ComputeAmplification(st, sb)
	if a.Write != 1.0 {
		t.Fatalf("WA = %v, want 1.0", a.Write)
	}
	if a.Read != 2.0 {
		t.Fatalf("RA = %v, want 2.0", a.Read)
	}
	if a.Space != 1.5 {
		t.Fatalf("SA = %v, want 1.5", a.Space)
	}
	if a.UserBytes != 100*types.EntrySize || a.DiskBytes != 150*types.EntrySize {
		t.Fatalf("raw accounting off: %+v", a)
	}

	// Merges add to the numerator: re-writing all flushed bytes once more
	// doubles WA.
	st.MergeBytes = st.FlushBytes
	if a := ComputeAmplification(st, sb); a.Write != 2.0 {
		t.Fatalf("WA with merges = %v, want 2.0", a.Write)
	}

	// Zero denominators must not divide: a run with no puts, gets, or
	// live entries reports zero factors rather than NaN/Inf.
	if a := ComputeAmplification(core.Stats{}, core.StorageBreakdown{}); a.Write != 0 || a.Read != 0 || a.Space != 0 {
		t.Fatalf("empty run: %+v", a)
	}
}

func TestAmplificationFromEngineCounters(t *testing.T) {
	// Drive a real store and check the derived factors against the same
	// formulas applied to its raw counters — the engine's accounting and
	// the report must agree exactly.
	db, err := cole.Open(cole.Options{Dir: t.TempDir(), MemCapacity: 64, SizeRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const blocks, perBlock = 40, 16
	for b := 1; b <= blocks; b++ {
		if err := db.BeginBlock(uint64(b)); err != nil {
			t.Fatal(err)
		}
		ups := make([]cole.Update, perBlock)
		for i := range ups {
			ups[i] = cole.Update{
				Addr:  types.AddressFromUint64(uint64(i)),
				Value: types.ValueFromBytes([]byte(fmt.Sprintf("b%d-%d", b, i))),
			}
		}
		if err := db.PutBatch(ups); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < perBlock; i++ {
		if _, ok, err := db.Get(types.AddressFromUint64(uint64(i))); err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
	}

	st, sb := db.Stats(), db.Storage()
	a := ComputeAmplification(st, sb)

	if st.Puts != blocks*perBlock {
		t.Fatalf("puts %d", st.Puts)
	}
	// 640 entries through MemCapacity 64 at size ratio 2 forces flushes
	// and cascading merges, so write amplification must exceed 1: merged
	// bytes re-count data the flush already wrote once.
	if st.MergeBytes == 0 || a.Write <= 1.0 {
		t.Fatalf("expected merge-driven WA > 1, got WA=%v (flush=%d merge=%d)",
			a.Write, st.FlushBytes, st.MergeBytes)
	}
	if want := float64(st.FlushBytes+st.MergeBytes) / float64(st.Puts*types.EntrySize); a.Write != want {
		t.Fatalf("WA %v, formula %v", a.Write, want)
	}
	if want := float64(st.PageReads) / float64(st.Gets); a.Read != want {
		t.Fatalf("RA %v, formula %v", a.Read, want)
	}
	if want := float64(sb.DataBytes+sb.IndexBytes) / float64(sb.Entries*types.EntrySize); a.Space != want {
		t.Fatalf("SA %v, formula %v", a.Space, want)
	}
	// COLE keeps every version, so the live set is all committed puts.
	if sb.Entries != st.Puts {
		t.Fatalf("entries %d vs puts %d", sb.Entries, st.Puts)
	}
	if a.Space < 1.0 {
		t.Fatalf("SA %v < 1: on-disk footprint cannot undercut live data", a.Space)
	}

	// statsDelta isolates a window: after the run, the delta against the
	// final snapshot is all-zero, and against the zero baseline is st.
	// The histogram travels by pointer, so it is compared by count and
	// cleared before the struct equality check.
	d := statsDelta(st, st)
	if d.Hist == nil || d.Hist.Commit.Count() != 0 || d.Hist.Get.Count() != 0 {
		t.Fatalf("self-delta histograms not empty: %+v", d.Hist)
	}
	d.Hist = nil
	if d != (core.Stats{}) {
		t.Fatalf("self-delta not zero: %+v", d)
	}
	d = statsDelta(core.Stats{}, st)
	if d.Hist.Commit.Count() != st.Hist.Commit.Count() {
		t.Fatalf("zero-baseline delta lost histogram samples: %d vs %d",
			d.Hist.Commit.Count(), st.Hist.Commit.Count())
	}
	d.Hist, st.Hist = nil, nil
	if d != st {
		t.Fatalf("zero-baseline delta changed counters")
	}
}

// TestStatsDeltaHistWindow checks that statsDelta's histogram subtraction
// isolates exactly the operations of a window: commits before the baseline
// snapshot must not appear in the windowed distribution.
func TestStatsDeltaHistWindow(t *testing.T) {
	db, err := cole.Open(cole.Options{Dir: t.TempDir(), MemCapacity: 64, SizeRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	run := func(from, blocks int) {
		for b := from; b < from+blocks; b++ {
			if err := db.BeginBlock(uint64(b)); err != nil {
				t.Fatal(err)
			}
			if err := db.Put(types.AddressFromUint64(uint64(b%8)), types.ValueFromUint64(uint64(b))); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(1, 10)
	base := db.Stats()
	run(11, 25)
	d := statsDelta(base, db.Stats())

	if d.Commits != 25 {
		t.Fatalf("windowed Commits = %d, want 25", d.Commits)
	}
	if d.Hist == nil {
		t.Fatal("windowed Stats.Hist is nil")
	}
	if got := d.Hist.Commit.Count(); got != 25 {
		t.Fatalf("windowed commit histogram holds %d samples, want 25", got)
	}
	if s := d.Hist.Commit.Summary(); s == nil || s.Count != 25 || s.Min <= 0 {
		t.Fatalf("windowed commit summary implausible: %+v", s)
	}
	// The baseline snapshot itself must be unchanged by the subtraction.
	if got := base.Hist.Commit.Count(); got != 10 {
		t.Fatalf("baseline mutated: %d samples, want 10", got)
	}
}
