package bench

import (
	"strings"
	"testing"
	"time"

	"cole"
	"cole/internal/workload"
)

func smokeSpec(name string, readFrac float64) workload.Spec {
	return workload.Spec{
		Name:         name,
		Keys:         200,
		ReadFraction: readFrac,
		TxPerBlock:   20,
		Duration:     150 * time.Millisecond,
		WarmUp:       50 * time.Millisecond,
		Concurrency:  2,
		Seed:         7,
	}
}

func TestRunOpenLoopMixedWorkload(t *testing.T) {
	db, err := cole.Open(cole.Options{Dir: t.TempDir(), MemCapacity: 128, SizeRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	r, err := runOpenLoop(db, smokeSpec("zipfian", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if r.readOps == 0 || r.writeOps == 0 {
		t.Fatalf("mixed run produced reads=%d writes=%d", r.readOps, r.writeOps)
	}
	// Every read counted in the window has exactly one latency sample.
	if r.readLat.Count() != r.readOps {
		t.Fatalf("read histogram has %d samples for %d reads", r.readLat.Count(), r.readOps)
	}
	if r.blocks == 0 || r.commitLat.Count() != r.blocks {
		t.Fatalf("commit histogram has %d samples for %d blocks", r.commitLat.Count(), r.blocks)
	}
	if r.elapsed <= 0 {
		t.Fatalf("elapsed %v", r.elapsed)
	}
	// FlushAll ran, so every landed entry was written at least once; the
	// skew can coalesce duplicate in-block writes, so bound WA by its
	// own flush volume rather than 1.
	if r.amp.Write <= 0 || r.amp.Write < float64(r.amp.FlushedBytes)/float64(r.amp.UserBytes) {
		t.Fatalf("WA %v inconsistent with flush volume: %+v", r.amp.Write, r.amp)
	}
	if r.amp.Space < 1.0 || r.amp.UserBytes == 0 {
		t.Fatalf("amplification accounting: %+v", r.amp)
	}
}

func TestRunOpenLoopWriteOnlyAndPaced(t *testing.T) {
	db, err := cole.Open(cole.Options{Dir: t.TempDir(), MemCapacity: 128, SizeRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	spec := smokeSpec("uniform", 0)
	spec.Rate = 2000 // paced open loop
	r, err := runOpenLoop(db, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.readOps != 0 || r.readLat.Count() != 0 {
		t.Fatalf("write-only run recorded %d reads", r.readOps)
	}
	if r.writeOps == 0 {
		t.Fatal("no writes recorded")
	}
	// 2000 ops/s over a ~150ms window cannot exceed the schedule by much;
	// allow generous slack for timer coarseness.
	if max := int64(2 * 2000 * (float64(spec.Duration+spec.WarmUp) / float64(time.Second))); r.writeOps > max {
		t.Fatalf("paced run issued %d writes, schedule allows ~%d", r.writeOps, max)
	}
	if r.readLat.Summary() != nil {
		t.Fatal("write-only run must have a nil read ladder")
	}
}

func TestRunOpenLoopUnknownGenerator(t *testing.T) {
	db, err := cole.Open(cole.Options{Dir: t.TempDir(), MemCapacity: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := runOpenLoop(db, workload.Spec{Name: "nope"}); err == nil || !strings.Contains(err.Error(), "unknown generator") {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkloadsMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix smoke is a multi-run benchmark")
	}
	cfg := NewConfig(Params{Records: 200, TxPerBlock: 20, MemCap: 128, SizeRatio: 2, Seed: 7})
	cfg.Duration = 120 * time.Millisecond
	cfg.WarmUp = 40 * time.Millisecond
	cfg.Concurrency = 2

	specs := []workload.Spec{{Name: "hotaccount", ReadFraction: 0.5}}
	tbl, err := Workloads(cfg, specs, []int{1, 2}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// 1 workload × {COLE, COLE*} × {1, 2} shards in deterministic order.
	if len(tbl.Rows) != 4 || len(tbl.Results) != 4 {
		t.Fatalf("rows %d results %d", len(tbl.Rows), len(tbl.Results))
	}
	wantOrder := []struct {
		sys    System
		shards int
	}{{SysCOLE, 1}, {SysCOLE, 2}, {SysCOLEAsync, 1}, {SysCOLEAsync, 2}}
	for i, res := range tbl.Results {
		if res.System != wantOrder[i].sys || res.Shards != wantOrder[i].shards {
			t.Fatalf("row %d: %s/%d shards, want %s/%d", i, res.System, res.Shards, wantOrder[i].sys, wantOrder[i].shards)
		}
		if res.Workload != "hotaccount/r50" {
			t.Fatalf("row %d workload %q", i, res.Workload)
		}
		if res.Txs == 0 || res.TPS == 0 {
			t.Fatalf("row %d measured nothing: %+v", i, res)
		}
		// Hot-account blocks coalesce duplicate addresses, so WA can dip
		// below 1 (fewer physical entries than logical puts) — it must
		// still be computed, and merges keep it above the pure
		// flush-only floor of Entries/Puts.
		if res.Amp == nil || res.Amp.Write <= 0 || res.Amp.UserBytes == 0 {
			t.Fatalf("row %d amplification missing: %+v", i, res.Amp)
		}
		if flushFloor := float64(res.Amp.FlushedBytes) / float64(res.Amp.UserBytes); res.Amp.Write < flushFloor {
			t.Fatalf("row %d WA %v below its own flush volume %v", i, res.Amp.Write, flushFloor)
		}
		if res.ReadLat == nil || res.ReadLat.Count != res.ReadOps {
			t.Fatalf("row %d read ladder inconsistent", i)
		}
		if res.StorageBytes == 0 {
			t.Fatalf("row %d storage not measured", i)
		}
	}
	if !strings.Contains(tbl.Render(), "hotaccount/r50") {
		t.Fatal("rendered table missing workload label")
	}
}
