package bench

import "cole/internal/hist"

// Hist is the HDR-style log-linear latency histogram, promoted to
// internal/hist so the engine can record into it on the hot path (the
// always-on operation histograms in core.Stats). The harness keeps
// these aliases so per-worker collection and report types read the
// same as before the move.
type Hist = hist.Hist

// HistSummary is the wire form of a histogram for benchmark reports.
type HistSummary = hist.Summary
