package bench

import (
	"math/bits"
	"time"
)

// Hist is an HDR-style log-linear latency histogram: values (nanoseconds)
// land in buckets whose width doubles every histSubCount values, so the
// relative quantization error is bounded by 1/histSubCount (~1.6%)
// across the full range — sub-microsecond spins to multi-second stalls —
// in a few KB of fixed memory. Recording is O(1) with no allocation, so
// per-op recording does not perturb the latency being measured. A Hist
// is single-goroutine state; the harness gives each worker its own and
// Merges them afterwards.
type Hist struct {
	counts   [histBuckets]int64
	total    int64
	min, max int64
}

const (
	// histSubBits fixes the linear sub-bucket resolution (2^6 = 64
	// sub-buckets per power of two).
	histSubBits  = 6
	histSubCount = 1 << histSubBits
	// histBuckets covers every int64 nanosecond value: 64 linear buckets
	// plus 64 per remaining power of two.
	histBuckets = histSubCount * (65 - histSubBits)
)

// histIndex maps a non-negative nanosecond value to its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	exp := bits.Len64(u) - histSubBits - 1
	return exp*histSubCount + int(u>>uint(exp))
}

// histValue returns the inclusive upper bound of a bucket — the value
// reported for any sample that landed in it, guaranteeing percentiles
// never under-report.
func histValue(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	exp := idx/histSubCount - 1
	sub := int64(idx - exp*histSubCount)
	return (sub+1)<<uint(exp) - 1
}

// Record adds one latency sample.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
}

// Merge folds another histogram into this one (per-worker histograms
// into the run total).
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.total }

// Percentile returns the latency at quantile p in [0, 1]: the smallest
// bucket bound below which at least p of the samples fall. The exact
// tracked extremes answer p = 0 and p = 1.
func (h *Hist) Percentile(p float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return time.Duration(h.min)
	}
	if p >= 1 {
		return time.Duration(h.max)
	}
	rank := int64(p*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := histValue(i)
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// HistSummary is the wire form of a histogram for benchmark reports:
// the percentile ladder the paper's tail-latency discussions use.
type HistSummary struct {
	Count               int64
	Min, P50, P95, P99  time.Duration
	P999, Max           time.Duration
	MilliP50, MilliP99  float64 // same points in ms, for plotting
	MilliP999, MilliMax float64
}

// Summary snapshots the percentile ladder.
func (h *Hist) Summary() *HistSummary {
	if h.total == 0 {
		return nil
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	s := &HistSummary{
		Count: h.total,
		Min:   time.Duration(h.min),
		P50:   h.Percentile(0.50),
		P95:   h.Percentile(0.95),
		P99:   h.Percentile(0.99),
		P999:  h.Percentile(0.999),
		Max:   time.Duration(h.max),
	}
	s.MilliP50, s.MilliP99 = ms(s.P50), ms(s.P99)
	s.MilliP999, s.MilliMax = ms(s.P999), ms(s.Max)
	return s
}
