package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cole"
	"cole/internal/obs"
	"cole/internal/types"
	"cole/internal/workload"
)

// stallCell is one corner of the stalls matrix: whether ingest pacing is
// on, and whether background merges run preemptibly chunked with the
// pipelined commit path or as monolithic jobs on the legacy path.
type stallCell struct {
	paced       bool
	preemptible bool
}

func (c stallCell) pacing() string {
	if c.paced {
		return "paced"
	}
	return "unpaced"
}

func (c stallCell) mergeMode() string {
	if c.preemptible {
		return "preemptible"
	}
	return "monolithic"
}

// stallCells enumerates the matrix with the reference cell (unpaced
// monolithic — the pre-pacing engine) first and the full stall-free
// configuration (paced preemptible) last.
var stallCells = []stallCell{
	{paced: false, preemptible: false},
	{paced: false, preemptible: true},
	{paced: true, preemptible: false},
	{paced: true, preemptible: true},
}

// stallOptions builds the engine options for one cell. The preemptible
// cells turn on the whole new write path — chunked merges, the pipelined
// commit, and the sorted bulk-load of L0 — while the monolithic cells pin
// the legacy behavior (MergeChunk < 0 disables chunking even for deep
// merges). A narrow merge pool is the experiment's point: commits must
// compete with compaction for the same workers.
func stallOptions(dir string, cfg Config, sys System, cell stallCell, target int64, memCap, chunk int) cole.Options {
	o := cole.Options{
		Dir:          dir,
		MemCapacity:  memCap,
		SizeRatio:    cfg.SizeRatio,
		Fanout:       cfg.Fanout,
		BloomFP:      cfg.BloomFP,
		AsyncMerge:   sys == SysCOLEAsync,
		MergeWorkers: cfg.MergeWorkers,
	}
	if o.MergeWorkers == 0 {
		o.MergeWorkers = 1
	}
	if cell.preemptible {
		o.MergeChunk = chunk
		o.PipelinedCommit = true
		o.SortedBatch = true
	} else {
		o.MergeChunk = -1
	}
	if cell.paced {
		o.PacingTarget = target
	}
	return o
}

// stallPacingTarget picks the debt level for the paced cells: an explicit
// cfg.PacingTarget wins, else 16 level-1 merge volumes — roughly one
// deep merge's worth of backlog. The target has to sit between two
// failure modes: near one routine L1 merge it throttles healthy
// steady-state ingest with multi-millisecond delays and pushes the
// paced tail up instead of down, while far above the deep-merge volume
// the pacer never engages and commits eat the backlog as stalls.
func stallPacingTarget(cfg Config) int64 {
	if cfg.PacingTarget > 0 {
		return cfg.PacingTarget
	}
	return 16 * int64(cfg.MemCap) * types.EntrySize * int64(cfg.SizeRatio)
}

// stallIdentity proves the matrix is digest-transparent: the same
// deterministic block sequence driven through every cell of one system
// must commit byte-identical per-block Hstate digests — chunking moves
// merge scheduling, pacing moves time, and the pipelined commit moves
// file I/O, but none of them may move a single hash. A deliberately tiny
// L0 and an aggressive chunk quantum make the sequence cascade
// constantly. Blocks are canonical (duplicate-free, address-sorted):
// the sorted bulk-load of the preemptible cells builds the L0 tree in
// key order, so it only promises the per-key-descent tree for batches
// already in that order — the form every cell must agree on.
func stallIdentity(cfg Config, sys System, target int64, scratch string) error {
	const (
		memCap   = 64
		chunk    = 4
		blocks   = 64
		perBlock = 48
		universe = 600
	)
	type cellRun struct {
		db   cole.DB
		dir  string
		cell stallCell
	}
	var runs []cellRun
	defer func() {
		for _, cr := range runs {
			_ = cr.db.Close()
			cleanup(cr.dir)
		}
	}()
	for _, cell := range stallCells {
		dir, err := tempDir(scratch, "stalls-id")
		if err != nil {
			return err
		}
		db, err := cole.Open(stallOptions(dir, cfg, sys, cell, target, memCap, chunk))
		if err != nil {
			cleanup(dir)
			return err
		}
		runs = append(runs, cellRun{db: db, dir: dir, cell: cell})
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for h := uint64(1); h <= blocks; h++ {
		picked := map[int]bool{}
		for len(picked) < perBlock {
			picked[rng.Intn(universe)] = true
		}
		batch := make([]types.Update, 0, perBlock)
		for i := 0; i < universe; i++ {
			if picked[i] {
				batch = append(batch, types.Update{
					Addr:  types.AddressFromUint64(uint64(i)),
					Value: types.ValueFromUint64(h<<20 | uint64(i)),
				})
			}
		}
		sort.Slice(batch, func(i, j int) bool {
			return bytes.Compare(batch[i].Addr[:], batch[j].Addr[:]) < 0
		})
		var ref types.Hash
		for i, cr := range runs {
			if err := cr.db.BeginBlock(h); err != nil {
				return err
			}
			if err := cr.db.PutBatch(batch); err != nil {
				return err
			}
			root, err := cr.db.Commit()
			if err != nil {
				return err
			}
			if i == 0 {
				ref = root
				continue
			}
			if root != ref {
				return fmt.Errorf("stalls: %s block %d: %s/%s digest %s != %s/%s digest %s",
					sys, h, cr.cell.pacing(), cr.cell.mergeMode(), root,
					runs[0].cell.pacing(), runs[0].cell.mergeMode(), ref)
			}
		}
	}
	return nil
}

// stallRate calibrates the open-loop arrival rate: an explicit cfg.Rate
// wins, else a short closed-loop probe of the reference cell (unpaced
// monolithic COLE*) measures raw write capacity and the matrix runs at
// 60% of it — fast enough that merge debt accumulates and monolithic
// deep merges stall commits, slow enough that a paced engine can absorb
// the backpressure without falling behind on throughput.
func stallRate(cfg Config, spec workload.Spec, target int64, scratch string) (float64, error) {
	if cfg.Rate > 0 {
		return cfg.Rate, nil
	}
	probe := spec
	probe.Rate = 0
	probe.WarmUp = 50 * time.Millisecond
	probe.Duration = spec.Duration / 2
	if probe.Duration < 250*time.Millisecond {
		probe.Duration = 250 * time.Millisecond
	}
	if probe.Duration > time.Second {
		probe.Duration = time.Second
	}
	dir, err := tempDir(scratch, "stalls-cal")
	if err != nil {
		return 0, err
	}
	defer cleanup(dir)
	db, err := cole.Open(stallOptions(dir, cfg, SysCOLEAsync, stallCells[0], target, cfg.MemCap, 0))
	if err != nil {
		return 0, err
	}
	defer db.Close()
	r, err := runOpenLoop(db, probe)
	if err != nil {
		return 0, fmt.Errorf("stalls calibration: %w", err)
	}
	secs := r.elapsed.Seconds()
	if secs <= 0 || r.writeOps == 0 {
		return 0, fmt.Errorf("stalls calibration: empty measured window")
	}
	return 0.6 * float64(r.writeOps) / secs, nil
}

// StallBench is the tail-latency experiment behind `colebench -exp
// stalls`: a sustained open-loop write run through every cell of
// {paced, unpaced} × {preemptible, monolithic} for both COLE systems,
// reporting the commit-latency ladder (p50/p99/p99.9/max) plus the
// engine's own stall, pacing, and preemption counters. All cells of one
// system share the same arrival rate, so their mean throughput is
// comparable and the ladder isolates the tail. Before the clock starts,
// a digest-identity pass proves every cell commits byte-identical
// per-block Hstate digests on a shared deterministic block sequence.
func StallBench(cfg Config, scratch string) (*Table, error) {
	cfg = cfg.Defaults()
	target := stallPacingTarget(cfg)

	t := &Table{
		Title: "Stalls: open-loop commit tail latency across pacing × merge preemption",
		Columns: []string{"system", "pacing", "merge", "blocks", "ops/s",
			"commit p50", "p99", "p99.9", "max", "stall", "paced", "preempts"},
		Notes: []string{
			fmt.Sprintf("paced cells ramp to full per-block delay at %d bytes of compaction debt", target),
			"stall = time commits spent blocked on unfinished merges; paced = delay the pacer injected ahead of writes",
		},
	}

	spec := cfg.Spec
	spec.Name = "uniform"
	spec.ReadFraction = 0
	spec.Concurrency = 1
	// A shallow store never stalls: commits only block on merges when the
	// narrow pool is busy with a deep level. Grow the load phase until the
	// store starts several levels deep, so the measured window sees deep
	// merges competing with flushes for the single worker.
	if minKeys := 32 * cfg.MemCap; spec.Keys < minKeys {
		spec.Keys = minKeys
	}
	workers := cfg.MergeWorkers
	if workers == 0 {
		workers = 1
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("merge pool: %d worker(s); preemptible cells also run the pipelined commit and sorted bulk-load", workers),
		fmt.Sprintf("load phase seeds %d keys so the store starts deep enough for merges to contend with commits", spec.Keys))

	for _, sys := range []System{SysCOLE, SysCOLEAsync} {
		if err := stallIdentity(cfg, sys, target, scratch); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "digest identity: all cells commit byte-identical per-block Hstate digests (verified)")

	rate, err := stallRate(cfg, spec, target, scratch)
	if err != nil {
		return nil, err
	}
	spec.Rate = rate
	t.Notes = append(t.Notes, fmt.Sprintf("open-loop arrival rate: %.0f ops/s (60%% of calibrated raw write capacity unless -rate is set)", rate))

	// Chunk the timed cells' merges at a quarter of a flush volume: fine
	// enough that even a level-1 merge reaches several checkpoints, coarse
	// enough that checkpoint overhead stays in the noise.
	chunk := cfg.MemCap / 4
	if chunk < 1 {
		chunk = 1
	}

	// heads keeps each system's p99.9 corners for the headline note.
	type headline struct{ mono, both time.Duration }
	heads := map[System]*headline{}
	// traceChecked counts the timed cells whose trace event counts were
	// verified against the engine's own counters (cfg.Trace set).
	traceChecked := 0
	for _, sys := range []System{SysCOLE, SysCOLEAsync} {
		heads[sys] = &headline{}
		for _, cell := range stallCells {
			dir, err := tempDir(scratch, "stalls")
			if err != nil {
				return nil, err
			}
			// Only the timed cells are traced: the identity pass and the
			// rate probe would otherwise fill the ring with events no one
			// exports.
			o := stallOptions(dir, cfg, sys, cell, target, cfg.MemCap, chunk)
			o.Trace = cfg.Trace
			var preemptBase, paceBase, dropBase int64
			if cfg.Trace != nil {
				preemptBase = cfg.Trace.CountType(obs.EvMergePreempt)
				paceBase = cfg.Trace.CountType(obs.EvPace)
				dropBase = cfg.Trace.Dropped()
			}
			db, err := cole.Open(o)
			if err != nil {
				cleanup(dir)
				return nil, err
			}
			r, err := runOpenLoop(db, spec)
			if err != nil {
				_ = db.Close()
				cleanup(dir)
				return nil, fmt.Errorf("%s/%s/%s: %w", sys, cell.pacing(), cell.mergeMode(), err)
			}
			if cfg.Trace != nil && cfg.Trace.Dropped() == dropBase {
				// runOpenLoop ends with FlushAll, which joins every in-flight
				// merge, so the engine is quiescent: its cumulative counters
				// and the tracer's event counts must agree exactly. A ring
				// that wrapped (drops) no longer holds every event, so the
				// check only runs on loss-free cells.
				st := db.Stats()
				if got := cfg.Trace.CountType(obs.EvMergePreempt) - preemptBase; got != st.Preemptions {
					_ = db.Close()
					cleanup(dir)
					return nil, fmt.Errorf("%s/%s/%s: %d preempt trace events, %d Stats.Preemptions",
						sys, cell.pacing(), cell.mergeMode(), got, st.Preemptions)
				}
				if got := cfg.Trace.CountType(obs.EvPace) - paceBase; got != st.PaceSleeps {
					_ = db.Close()
					cleanup(dir)
					return nil, fmt.Errorf("%s/%s/%s: %d pace trace events, %d Stats.PaceSleeps",
						sys, cell.pacing(), cell.mergeMode(), got, st.PaceSleeps)
				}
				traceChecked++
			}
			st := r.stats
			res := Result{
				System:         sys,
				Workload:       Workload(spec.Label()),
				Pacing:         cell.pacing(),
				MergeMode:      cell.mergeMode(),
				Rate:           rate,
				Blocks:         int(r.blocks),
				Txs:            int(r.writeOps),
				Elapsed:        r.elapsed,
				WriteOps:       r.writeOps,
				CommitLat:      r.commitLat.Summary(),
				StallNanos:     st.StallNanos,
				PaceNanos:      st.PaceNanos,
				MaxCommitNanos: st.MaxCommitNanos,
				Preemptions:    st.Preemptions,
			}
			if cell.paced {
				res.PacingTarget = target
			}
			if secs := r.elapsed.Seconds(); secs > 0 {
				res.TPS = float64(r.writeOps) / secs
			}
			_ = db.Close()
			cleanup(dir)
			t.Results = append(t.Results, res)
			t.Rows = append(t.Rows, []string{
				string(sys), res.Pacing, res.MergeMode,
				fmt.Sprint(res.Blocks), fmt.Sprintf("%.0f", res.TPS),
				latCell(res.CommitLat, func(s *HistSummary) time.Duration { return s.P50 }),
				latCell(res.CommitLat, func(s *HistSummary) time.Duration { return s.P99 }),
				latCell(res.CommitLat, func(s *HistSummary) time.Duration { return s.P999 }),
				latCell(res.CommitLat, func(s *HistSummary) time.Duration { return s.Max }),
				fmtDur(time.Duration(res.StallNanos)),
				fmtDur(time.Duration(res.PaceNanos)),
				fmt.Sprint(res.Preemptions),
			})
			if res.CommitLat != nil {
				switch {
				case !cell.paced && !cell.preemptible:
					heads[sys].mono = res.CommitLat.P999
				case cell.paced && cell.preemptible:
					heads[sys].both = res.CommitLat.P999
				}
			}
		}
	}
	if traceChecked > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"trace verification: preempt/pace event counts matched Stats.Preemptions/PaceSleeps on %d/%d timed cells",
			traceChecked, 2*len(stallCells)))
	}
	for _, sys := range []System{SysCOLE, SysCOLEAsync} {
		h := heads[sys]
		if h.mono > 0 && h.both > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: paced+preemptible p99.9 commit = %s vs unpaced monolithic %s (%.1fx lower)",
				sys, h.both.Round(time.Microsecond), h.mono.Round(time.Microsecond),
				float64(h.mono)/float64(h.both)))
		}
	}
	return t, nil
}
