// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§8) — see DESIGN.md §3 for the
// experiment index. Each experiment returns a Table whose rows mirror the
// series the paper plots; absolute numbers depend on the host, but the
// shapes (who wins, by what factor, where crossovers fall) are the
// reproduction target.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cole/internal/chain"
	"cole/internal/core"
	"cole/internal/kvstore"
	"cole/internal/obs"
	"cole/internal/workload"
)

// System identifies a storage engine under test.
type System string

// The five systems of §8.1.1.
const (
	SysMPT       System = "MPT"
	SysCOLE      System = "COLE"
	SysCOLEAsync System = "COLE*"
	SysLIPP      System = "LIPP"
	SysCMI       System = "CMI"
)

// Workload identifies a transaction generator.
type Workload string

// The paper's workloads (§8.1.3).
const (
	WorkloadSmallBank Workload = "smallbank"
	WorkloadKVStore   Workload = "kvstore"
)

// SystemSpec configures the storage engine under test, independent of
// the traffic driven through it: partitioning, merge scheduling, the
// write pipeline, the compaction IO mode, and the structural parameters.
type SystemSpec struct {
	MemCap    int     // COLE B (entries per L0 group)
	MemBytes  int     // kvstore write buffer for baselines
	SizeRatio int     // T
	Fanout    int     // m
	BloomFP   float64 // bloom false-positive target
	Shards    int     // COLE shard count (0/1 = single engine)
	// MergeWorkers bounds the shared background merge pool for the COLE
	// systems (0 = GOMAXPROCS); the budget spans every level of every
	// shard.
	MergeWorkers int
	// MergePartitions is COLE's intra-merge key-range fan-out (core
	// Options.MergePartitions): 1 sequential, 0 auto-sized by merge
	// volume. Purely a wall-time knob — run files are byte-identical at
	// every width.
	MergePartitions int
	// Batched routes each block's writes through the batched pipeline
	// (chain.Batched → PutBatch) instead of per-update Put calls.
	// Digests are identical either way.
	Batched bool
	// IOMode selects the merge/build data path: "" or "streaming" is the
	// full streaming pipeline, "legacy" reverts to per-entry hashing and
	// one-page IO granularity (run files stay byte-identical either way).
	IOMode string
	// PacingTarget is the compaction-debt level (bytes of in-flight merge
	// input) at which ingest backpressure reaches its full per-block
	// delay; 0 disables pacing. The stalls experiment's paced cells
	// auto-size it from MemCap when the knob is unset.
	PacingTarget int64
	// Trace, when set, records engine lifecycle events (flushes, merge
	// chunks, preemptions, pacing sleeps, commit phases) into the given
	// ring for post-run export; nil (the default) keeps the recording
	// branches disabled. The COLE systems thread it into every engine
	// they open; the baselines ignore it.
	Trace *obs.Tracer
}

// Config scales an experiment: the engine under test (SystemSpec), the
// declarative workload (workload.Spec — key population, distribution,
// mix, duration, concurrency, seed), and the paper experiments'
// closed-loop knobs. Both parts are embedded, so experiment code reads
// cfg.Shards or cfg.Seed directly; literal construction goes through
// NewConfig. Paper-scale values are 100 tx/block and up to 10^5 blocks;
// defaults are laptop-scale and every knob can be raised.
type Config struct {
	SystemSpec
	workload.Spec

	Blocks   int // number of blocks to execute (closed-loop experiments)
	Accounts int // SmallBank account population
	Records  int // KVStore record population
	Mix      int // KVStore mix: 0 RW, 1 RO, 2 WO (workload.Mix)
}

// Params is the flat knob set Config grew from, kept as the compatibility
// constructor input: the paper-replication experiments and their callers
// keep building configurations from these names while the structured
// Config feeds the workload matrix.
type Params struct {
	Blocks       int
	TxPerBlock   int
	Accounts     int
	Records      int
	Mix          int
	MemCap       int
	MemBytes     int
	SizeRatio    int
	Fanout       int
	BloomFP      float64
	Shards       int
	MergeWorkers int
	Batched      bool
	Seed         int64
}

// NewConfig lifts the legacy flat parameter set into the structured
// Config (system knobs into SystemSpec, traffic knobs into the embedded
// workload.Spec).
func NewConfig(p Params) Config {
	return Config{
		SystemSpec: SystemSpec{
			MemCap: p.MemCap, MemBytes: p.MemBytes,
			SizeRatio: p.SizeRatio, Fanout: p.Fanout, BloomFP: p.BloomFP,
			Shards: p.Shards, MergeWorkers: p.MergeWorkers, Batched: p.Batched,
		},
		Spec: workload.Spec{
			TxPerBlock: p.TxPerBlock,
			Keys:       p.Records,
			Seed:       p.Seed,
		},
		Blocks:   p.Blocks,
		Accounts: p.Accounts,
		Records:  p.Records,
		Mix:      p.Mix,
	}
}

// Defaults fills unset fields with laptop-scale values.
func (c Config) Defaults() Config {
	if c.Blocks == 0 {
		c.Blocks = 200
	}
	if c.TxPerBlock == 0 {
		c.TxPerBlock = 100
	}
	if c.Accounts == 0 {
		c.Accounts = 1000
	}
	if c.Records == 0 {
		c.Records = 1000
	}
	if c.MemCap == 0 {
		c.MemCap = 4096
	}
	if c.MemBytes == 0 {
		c.MemBytes = 1 << 20
	}
	if c.SizeRatio == 0 {
		c.SizeRatio = 4
	}
	if c.Fanout == 0 {
		c.Fanout = 4
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Keys == 0 {
		c.Keys = c.Records
	}
	c.Spec = c.Spec.WithDefaults()
	return c
}

// LatencyStats summarizes a latency distribution (the paper's box plots:
// quartiles, median, and the max outlier as tail latency).
type LatencyStats struct {
	Min, P25, P50, P75, P99, Max time.Duration
}

// Summarize computes LatencyStats from samples.
func Summarize(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	q := func(p float64) time.Duration {
		idx := int(p * float64(len(s)-1))
		return s[idx]
	}
	return LatencyStats{Min: s[0], P25: q(0.25), P50: q(0.50), P75: q(0.75), P99: q(0.99), Max: s[len(s)-1]}
}

// Result is the outcome of driving one system through one workload.
type Result struct {
	System       System
	Workload     Workload
	Blocks       int
	Txs          int
	Elapsed      time.Duration
	TPS          float64
	StorageBytes int64
	DataBytes    int64 // value payload bytes (COLE value files; estimates elsewhere)
	IndexBytes   int64
	Levels       int
	Latency      LatencyStats
	// MergeWaits counts merge back-pressure events (commits blocked on an
	// unfinished merge + jobs queued behind a full worker pool); COLE
	// systems only.
	MergeWaits int64
	// ShardPuts is the per-shard write count (sharded COLE only) and
	// Imbalance its max/mean ratio — 1.0 is perfectly balanced routing.
	// The counts are what reached the shards: a Batched run coalesces
	// duplicate addresses inside each block before routing, so compare
	// ShardPuts across runs with the same Batched setting.
	ShardPuts []int64
	Imbalance float64
	// Read-scaling measurements (the readscale experiment): Readers is
	// the reader-goroutine count, ReadTPS the point-read throughput with
	// an idle write path, MixedReadTPS/MixedWriteTPS the throughputs
	// while a writer commits blocks concurrently, and BloomSkips the
	// runs skipped by per-run Bloom filters during the reads.
	Readers       int     `json:",omitempty"`
	ReadTPS       float64 `json:",omitempty"`
	MixedReadTPS  float64 `json:",omitempty"`
	MixedWriteTPS float64 `json:",omitempty"`
	BloomSkips    int64   `json:",omitempty"`
	// Reshard measurements (the reshard experiment): the source and
	// target shard counts, the offline rewrite's wall time and logical
	// bandwidth, and write TPS on the identical block pipeline before and
	// after the rewrite (Imbalance then reports the destination entry
	// spread).
	ReshardFrom    int     `json:",omitempty"`
	ReshardTo      int     `json:",omitempty"`
	ReshardSeconds float64 `json:",omitempty"`
	ReshardMBps    float64 `json:",omitempty"`
	TPSBefore      float64 `json:",omitempty"`
	TPSAfter       float64 `json:",omitempty"`
	// Compaction measurements (the compaction experiment): IOMode labels
	// the pipeline leg — "legacy" reverts the per-entry CPU work and
	// syscall granularity (1-page windows/writes, every leaf and Bloom
	// hash recomputed) while "streaming" is the full pipeline; both legs
	// read merges outside the LRU, so the cache columns describe the
	// current bypass architecture, not a delta against the seed's
	// cache-polluting reads. MergeBytes is the level-merge volume,
	// MergeMBps that volume per second spent inside merge builds, and
	// PageReads / CacheHits the point-read page-cache totals (physical
	// reads vs LRU hits), which stay intact under heavy compaction.
	// MergePartitions is the key-range fan-out the row ran with (set on
	// the partition-sweep rows and any engine phase with the knob set).
	IOMode          string  `json:",omitempty"`
	MergePartitions int     `json:",omitempty"`
	MergeBytes      int64   `json:",omitempty"`
	MergeMBps       float64 `json:",omitempty"`
	PageReads       int64   `json:",omitempty"`
	CacheHits       int64   `json:",omitempty"`
	// Open-loop workload measurements (the workloads experiment): the
	// shard count of the store under test, the per-class operation
	// counts of the measured window, the per-op read and per-block
	// commit latency ladders, and the amplification report derived from
	// the engine's own counters.
	Shards    int            `json:",omitempty"`
	ReadOps   int64          `json:",omitempty"`
	WriteOps  int64          `json:",omitempty"`
	ReadLat   *HistSummary   `json:",omitempty"`
	CommitLat *HistSummary   `json:",omitempty"`
	Amp       *Amplification `json:",omitempty"`
	// Stall measurements (the stalls experiment): Pacing and MergeMode
	// name the matrix cell ("paced"/"unpaced" × "preemptible"/
	// "monolithic"), PacingTarget the debt level the paced cells ran
	// with, Rate the open-loop arrival rate in ops/s, and the counters
	// are the engine's own session totals — time commits spent blocked
	// on unfinished merges (StallNanos), time the pacer injected ahead
	// of writes (PaceNanos), the worst single commit (MaxCommitNanos),
	// and how often chunked merges handed their worker slot to more
	// urgent work (Preemptions).
	Pacing         string  `json:",omitempty"`
	MergeMode      string  `json:",omitempty"`
	PacingTarget   int64   `json:",omitempty"`
	Rate           float64 `json:",omitempty"`
	StallNanos     int64   `json:",omitempty"`
	PaceNanos      int64   `json:",omitempty"`
	MaxCommitNanos int64   `json:",omitempty"`
	Preemptions    int64   `json:",omitempty"`
	blockLats      []time.Duration
}

// backendHandle couples a backend with its measurement hooks.
type backendHandle struct {
	backend chain.StateBackend
	// measure returns (total, data, index) storage bytes and level count.
	measure func() (int64, int64, int64, int)
	// stats returns merge-wait and per-shard put counters (zero/nil for
	// the baselines).
	stats func() (int64, []int64)
	close func()
}

func openSystem(sys System, dir string, cfg Config) (*backendHandle, error) {
	switch sys {
	case SysCOLE, SysCOLEAsync:
		o := core.Options{
			Dir:              dir,
			MemCapacity:      cfg.MemCap,
			SizeRatio:        cfg.SizeRatio,
			Fanout:           cfg.Fanout,
			BloomFP:          cfg.BloomFP,
			AsyncMerge:       sys == SysCOLEAsync,
			Shards:           cfg.Shards,
			MergeWorkers:     cfg.MergeWorkers,
			MergePartitions:  cfg.MergePartitions,
			LegacyCompaction: cfg.IOMode == "legacy",
			Trace:            cfg.Trace,
		}
		// The batched pipeline buffers each block and lands it as one
		// PutBatch; digests are unchanged, so it is purely a perf knob.
		maybeBatch := func(b chain.BatchBackend) chain.StateBackend {
			if cfg.Batched {
				return chain.NewBatched(b)
			}
			return b
		}
		if cfg.Shards > 1 {
			b, err := chain.OpenShardedCole(o)
			if err != nil {
				return nil, err
			}
			return &backendHandle{
				backend: maybeBatch(b),
				measure: func() (int64, int64, int64, int) {
					_ = b.Store.FlushAll()
					sb := b.Store.Storage()
					return sb.DataBytes + sb.IndexBytes, sb.DataBytes, sb.IndexBytes, sb.Levels
				},
				stats: func() (int64, []int64) {
					puts := make([]int64, 0, b.Store.Shards())
					for _, ss := range b.Store.ShardStats() {
						puts = append(puts, ss.Puts)
					}
					return b.Store.Stats().MergeWaits, puts
				},
				close: func() { _ = b.Close() },
			}, nil
		}
		b, err := chain.OpenCole(o)
		if err != nil {
			return nil, err
		}
		return &backendHandle{
			backend: maybeBatch(b),
			measure: func() (int64, int64, int64, int) {
				// Persist L0 so on-disk size reflects all data, as the
				// paper measures storage after the run.
				_ = b.Engine.FlushAll()
				sb := b.Engine.Storage()
				return sb.DataBytes + sb.IndexBytes, sb.DataBytes, sb.IndexBytes, sb.Levels
			},
			stats: func() (int64, []int64) {
				return b.Engine.Stats().MergeWaits, nil
			},
			close: func() { _ = b.Close() },
		}, nil
	case SysMPT:
		b, err := chain.OpenMPT(kvstore.Options{Dir: dir, MemBytes: cfg.MemBytes, SizeRatio: cfg.SizeRatio})
		if err != nil {
			return nil, err
		}
		return &backendHandle{
			backend: b,
			measure: func() (int64, int64, int64, int) {
				_ = b.DB.Flush()
				total := b.DB.SizeOnDisk()
				return total, 0, total, 0
			},
			close: func() { _ = b.Close() },
		}, nil
	case SysLIPP:
		b, err := chain.OpenLIPP(kvstore.Options{Dir: dir, MemBytes: cfg.MemBytes, SizeRatio: cfg.SizeRatio})
		if err != nil {
			return nil, err
		}
		return &backendHandle{
			backend: b,
			measure: func() (int64, int64, int64, int) {
				_ = b.DB.Flush()
				total := b.DB.SizeOnDisk()
				return total, 0, total, 0
			},
			close: func() { _ = b.Close() },
		}, nil
	case SysCMI:
		b, err := chain.OpenCMI(kvstore.Options{Dir: dir, MemBytes: cfg.MemBytes, SizeRatio: cfg.SizeRatio})
		if err != nil {
			return nil, err
		}
		return &backendHandle{
			backend: b,
			measure: func() (int64, int64, int64, int) {
				_ = b.DB.Flush()
				total := b.DB.SizeOnDisk()
				return total, 0, total, 0
			},
			close: func() { _ = b.Close() },
		}, nil
	}
	return nil, fmt.Errorf("bench: unknown system %q", sys)
}

// blockSource yields per-block transaction batches.
type blockSource interface {
	Block(n int) []chain.Tx
}

// Run drives one system through cfg.Blocks blocks of the workload and
// collects throughput, latency, and storage.
func Run(sys System, wl Workload, cfg Config, dir string) (Result, error) {
	cfg = cfg.Defaults()
	h, err := openSystem(sys, dir, cfg)
	if err != nil {
		return Result{}, err
	}
	defer h.close()

	gen, load, err := makeWorkload(wl, cfg)
	if err != nil {
		return Result{}, err
	}
	c := chain.New(h.backend, 0)
	// Loading phase (KVStore base data) executes before the clock starts,
	// matching YCSB's load/run split.
	for len(load) > 0 {
		n := cfg.TxPerBlock
		if n > len(load) {
			n = len(load)
		}
		if _, err := c.ExecuteBlock(load[:n]); err != nil {
			return Result{}, err
		}
		load = load[n:]
	}

	res := Result{System: sys, Workload: wl, Blocks: cfg.Blocks, Txs: cfg.Blocks * cfg.TxPerBlock}
	start := time.Now()
	for i := 0; i < cfg.Blocks; i++ {
		bStart := time.Now()
		if _, err := c.ExecuteBlock(gen.Block(cfg.TxPerBlock)); err != nil {
			return Result{}, err
		}
		res.blockLats = append(res.blockLats, time.Since(bStart))
	}
	res.Elapsed = time.Since(start)
	res.TPS = float64(res.Txs) / res.Elapsed.Seconds()
	res.Latency = Summarize(res.blockLats)
	if h.stats != nil {
		res.MergeWaits, res.ShardPuts = h.stats()
		res.Imbalance = imbalance(res.ShardPuts)
	}
	res.StorageBytes, res.DataBytes, res.IndexBytes, res.Levels = h.measure()
	return res, nil
}

// imbalance is max/mean of the per-shard write counts: 1.0 means the hash
// partitioner routed perfectly evenly, 2.0 means the hottest shard took
// twice its fair share (and is the commit straggler).
func imbalance(counts []int64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var total, max int64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(counts))
	return float64(max) / mean
}

func makeWorkload(wl Workload, cfg Config) (blockSource, []chain.Tx, error) {
	switch wl {
	case WorkloadSmallBank:
		return newSmallBankSource(cfg), nil, nil
	case WorkloadKVStore:
		g, load := newKVStoreSource(cfg)
		return g, load, nil
	}
	return nil, nil, fmt.Errorf("bench: unknown workload %q", wl)
}

// Table is a printable experiment output: the rows the paper plots.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string `json:",omitempty"`
	// Results carries the raw measurements behind the rows for machine
	// consumers (the -json flag): unlike the rendered cells these keep
	// MergeWaits, per-shard put counts, and the latency summary, so
	// merge tuning is comparable across runs. Experiments that want
	// their data tracked append here; render-only experiments leave it
	// nil.
	Results []Result `json:",omitempty"`
}

// Render formats the table for terminal output.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// tempDir makes a scratch directory for one run.
func tempDir(base, name string) (string, error) {
	if base == "" {
		base = os.TempDir()
	}
	return os.MkdirTemp(base, "colebench-"+name+"-")
}

// cleanup removes a scratch directory.
func cleanup(dir string) { os.RemoveAll(dir) }

// fmtBytes renders a byte count in MB with sensible precision.
func fmtBytes(b int64) string {
	mb := float64(b) / (1 << 20)
	switch {
	case mb >= 100:
		return fmt.Sprintf("%.0fMB", mb)
	case mb >= 1:
		return fmt.Sprintf("%.1fMB", mb)
	default:
		return fmt.Sprintf("%.3fMB", mb)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

// subdir joins a base with a run-specific name, creating it.
func subdir(base, name string) (string, error) {
	d := filepath.Join(base, name)
	return d, os.MkdirAll(d, 0o755)
}
