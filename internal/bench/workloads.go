package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cole"
	"cole/internal/types"
	"cole/internal/workload"
)

// openLoopResult is one measured window of runOpenLoop.
type openLoopResult struct {
	elapsed   time.Duration
	readOps   int64
	writeOps  int64
	blocks    int64
	readLat   Hist
	commitLat Hist
	amp       Amplification
	// stats is the engine counter snapshot taken right before the final
	// FlushAll, so stall/pace/commit counters describe the driven run,
	// not the shutdown join of whatever merges were still in flight.
	stats cole.Stats
}

// readReq is one point read dispatched to a reader worker. issued is the
// operation's scheduled arrival time: under a target rate it can precede
// the dispatch (the op queued behind a slow store), and the recorded
// latency is measured from it — the open-loop convention that keeps tail
// latency honest under saturation instead of silently omitting the
// queueing delay (coordinated omission).
type readReq struct {
	addr   types.Address
	issued time.Time
	record bool
}

// runOpenLoop drives any cole.DB with spec's operation stream for a
// fixed duration and measures per-op latency.
//
// The harness mirrors the store's concurrency contract: one dispatcher
// goroutine owns the write path (blocks of TxPerBlock writes land as
// PutBatch + Commit, timed as whole blocks into the commit histogram)
// while point reads fan out to spec.Concurrency workers that hit the
// lock-free read path concurrently, each recording into its own
// histogram (merged afterwards). The first WarmUp of the run executes
// identically but unrecorded; spec.Rate > 0 paces operation arrivals.
//
// The returned amplification covers the whole session — load phase,
// warm-up, and measured window — because maintenance IO (merges seeded
// by the load, flushes straddling the warm-up boundary) is not
// attributable to any one window; latency and throughput cover only the
// measured window.
func runOpenLoop(db cole.DB, spec workload.Spec) (*openLoopResult, error) {
	spec = spec.WithDefaults()
	gen, err := workload.New(spec)
	if err != nil {
		return nil, err
	}
	base := db.Stats()

	// Load phase: apply the base population in blocks before the clock
	// starts (YCSB's load/run split).
	height := db.Height()
	commitBlock := func(ups []types.Update) error {
		height++
		if err := db.BeginBlock(height); err != nil {
			return err
		}
		if err := db.PutBatch(ups); err != nil {
			return err
		}
		_, err := db.Commit()
		return err
	}
	for load := gen.Load(); len(load) > 0; {
		n := spec.TxPerBlock
		if n > len(load) {
			n = len(load)
		}
		if err := commitBlock(load[:n]); err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		load = load[n:]
	}

	// Reader pool: each worker owns a histogram so recording is
	// uncontended. The first error wins; failed workers keep draining
	// the channel so the dispatcher can never block on a dead pool.
	var (
		res    openLoopResult
		hists  = make([]Hist, spec.Concurrency)
		reads  = make(chan readReq, spec.Concurrency*64)
		wg     sync.WaitGroup
		failed atomic.Bool
		errMu  sync.Mutex
		runErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
			failed.Store(true)
		}
		errMu.Unlock()
	}
	for w := 0; w < spec.Concurrency; w++ {
		wg.Add(1)
		go func(h *Hist) {
			defer wg.Done()
			for req := range reads {
				if failed.Load() {
					continue
				}
				if _, _, err := db.Get(req.addr); err != nil {
					fail(fmt.Errorf("read %x: %w", req.addr, err))
					continue
				}
				if req.record {
					h.Record(time.Since(req.issued))
				}
			}
		}(&hists[w])
	}

	var (
		start      = time.Now()
		warmEnd    = start.Add(spec.WarmUp)
		deadline   = warmEnd.Add(spec.Duration)
		measuredAt time.Time // actual start of the recorded window
		batch      = make([]types.Update, 0, spec.TxPerBlock)
		issued     int64
	)
	for !failed.Load() {
		now := time.Now()
		if spec.Rate > 0 {
			// Open loop: the i-th operation arrives at its scheduled
			// instant regardless of how the store is keeping up.
			at := start.Add(time.Duration(float64(issued) / spec.Rate * float64(time.Second)))
			if wait := at.Sub(now); wait > 0 {
				time.Sleep(wait)
			}
			now = at // behind schedule: latency includes the backlog
		}
		if !time.Now().Before(deadline) {
			break
		}
		recording := !now.Before(warmEnd)
		if recording && measuredAt.IsZero() {
			measuredAt = time.Now()
		}
		op := gen.Next()
		issued++
		if op.Read {
			reads <- readReq{addr: op.Addr, issued: now, record: recording}
			if recording {
				res.readOps++
			}
			continue
		}
		batch = append(batch, types.Update{Addr: op.Addr, Value: op.Value})
		if recording {
			res.writeOps++
		}
		if len(batch) >= spec.TxPerBlock {
			cStart := time.Now()
			if err := commitBlock(batch); err != nil {
				fail(err)
				break
			}
			if recording {
				res.commitLat.Record(time.Since(cStart))
				res.blocks++
			}
			batch = batch[:0]
		}
	}
	// Land any partial tail block so the store's state covers every op
	// counted as issued (unrecorded: it is not a full block).
	if len(batch) > 0 && !failed.Load() {
		if err := commitBlock(batch); err != nil {
			fail(err)
		}
	}
	close(reads)
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if measuredAt.IsZero() {
		measuredAt = time.Now()
	}
	res.elapsed = time.Since(measuredAt)
	for i := range hists {
		res.readLat.Merge(&hists[i])
	}

	// Maintenance accounting: flush so the footprint covers everything
	// ingested, then derive WA/RA/SA from the engine's own counters.
	res.stats = db.Stats()
	if err := db.FlushAll(); err != nil {
		return nil, err
	}
	res.amp = ComputeAmplification(statsDelta(base, db.Stats()), db.Storage())
	return &res, nil
}

// DefaultWorkloadSpecs is the workload axis of the workloads experiment:
// a uniform balanced-mix baseline, the YCSB zipfian request distribution
// at balanced and read-heavy mixes, and the blockchain hot-account shape
// at a write-heavy mix.
func DefaultWorkloadSpecs() []workload.Spec {
	return []workload.Spec{
		{Name: "uniform", ReadFraction: 0.5},
		{Name: "zipfian", ReadFraction: 0.5},
		{Name: "zipfian", ReadFraction: 0.95},
		{Name: "hotaccount", ReadFraction: 0.10},
	}
}

// Workloads runs the {workload × system × shards} matrix through the
// open-loop harness: every store variant (COLE sync/async merge, single
// and sharded) is driven purely through the cole.DB interface. specs
// defaulting to DefaultWorkloadSpecs inherit cfg's traffic shape (keys,
// duration, warm-up, concurrency, rate, seed); shards defaults to {1}
// plus cfg.Shards when sharded.
func Workloads(cfg Config, specs []workload.Spec, shards []int, scratchDir string) (*Table, error) {
	cfg = cfg.Defaults()
	if specs == nil {
		specs = DefaultWorkloadSpecs()
	}
	if shards == nil {
		shards = []int{1}
		if cfg.Shards > 1 {
			shards = append(shards, cfg.Shards)
		}
	}

	t := &Table{
		Title:   "Workload matrix: open-loop latency and WA/RA/SA (per cole.DB backend)",
		Columns: []string{"workload", "system", "shards", "ops/s", "read p50", "read p99", "commit p99", "WA", "RA", "SA"},
		Notes: []string{
			"read latencies are per-op under concurrent readers; commit latency is per TxPerBlock-write block",
			"WA=(flush+merge bytes)/user bytes, RA=page reads/gets, SA=disk/live bytes — all from engine counters",
		},
	}
	for _, s := range specs {
		// The spec matrix varies distribution and mix; everything else —
		// population, pacing, duration — comes from the shared config so
		// rows are comparable.
		spec := cfg.Spec
		spec.Name, spec.ReadFraction = s.Name, s.ReadFraction
		if s.Keys > 0 {
			spec.Keys = s.Keys
		}
		for _, sys := range []System{SysCOLE, SysCOLEAsync} {
			for _, n := range shards {
				dir, err := tempDir(scratchDir, "workloads")
				if err != nil {
					return nil, err
				}
				opts := cole.Options{
					Dir:          dir,
					MemCapacity:  cfg.MemCap,
					SizeRatio:    cfg.SizeRatio,
					Fanout:       cfg.Fanout,
					BloomFP:      cfg.BloomFP,
					AsyncMerge:   sys == SysCOLEAsync,
					MergeWorkers: cfg.MergeWorkers,
					Trace:        cfg.Trace,
				}
				var db cole.DB
				if n > 1 {
					opts.Shards = n
					db, err = cole.OpenSharded(opts)
				} else {
					db, err = cole.Open(opts)
				}
				if err != nil {
					cleanup(dir)
					return nil, err
				}
				r, err := runOpenLoop(db, spec)
				if err == nil {
					res := Result{
						System:    sys,
						Workload:  Workload(spec.Label()),
						Shards:    n,
						Blocks:    int(r.blocks),
						Txs:       int(r.readOps + r.writeOps),
						Elapsed:   r.elapsed,
						ReadOps:   r.readOps,
						WriteOps:  r.writeOps,
						ReadLat:   r.readLat.Summary(),
						CommitLat: r.commitLat.Summary(),
						Amp:       &r.amp,
					}
					if secs := r.elapsed.Seconds(); secs > 0 {
						res.TPS = float64(res.Txs) / secs
					}
					sb := db.Storage()
					res.StorageBytes = sb.DataBytes + sb.IndexBytes
					res.DataBytes, res.IndexBytes, res.Levels = sb.DataBytes, sb.IndexBytes, sb.Levels
					t.Results = append(t.Results, res)
					t.Rows = append(t.Rows, []string{
						string(res.Workload), string(sys), fmt.Sprintf("%d", n),
						fmt.Sprintf("%.0f", res.TPS),
						latCell(res.ReadLat, func(s *HistSummary) time.Duration { return s.P50 }),
						latCell(res.ReadLat, func(s *HistSummary) time.Duration { return s.P99 }),
						latCell(res.CommitLat, func(s *HistSummary) time.Duration { return s.P99 }),
						fmt.Sprintf("%.2f", r.amp.Write),
						fmt.Sprintf("%.2f", r.amp.Read),
						fmt.Sprintf("%.2f", r.amp.Space),
					})
				}
				_ = db.Close()
				cleanup(dir)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%d shards: %w", spec.Label(), sys, n, err)
				}
			}
		}
	}
	return t, nil
}

// latCell renders one percentile of a possibly-absent histogram summary
// (a write-only workload has no read ladder, a read-only one commits no
// full blocks).
func latCell(s *HistSummary, pick func(*HistSummary) time.Duration) string {
	if s == nil {
		return "-"
	}
	return pick(s).Round(time.Microsecond).String()
}
