package bench

import (
	"fmt"
	"runtime"

	"cole/internal/workload"
)

// MergeSched sweeps the shared merge-worker budget at a fixed shard
// count: the KVStore write-only mix through batched COLE and COLE*
// stores whose background flush/merge jobs all run on a pool of W
// workers, for W in `workers`. A budget of 1 serializes every merge in
// the store (maximum back-pressure, visible as mergewaits); budgets at
// or above shards × levels approximate the old unbounded behavior. The
// sweet spot — where TPS flattens while mergewaits is still low — is the
// value to pin -merge-workers to in deployment.
func MergeSched(cfg Config, workers []int, scratch string) (*Table, error) {
	cfg = cfg.Defaults()
	if cfg.Shards < 2 {
		cfg.Shards = 4
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	}
	cfg.Mix = int(workload.WriteOnly)
	cfg.Batched = true
	t := &Table{
		Title:   fmt.Sprintf("Merge scheduler: throughput vs worker budget (%d shards, KVStore WO, batched writes)", cfg.Shards),
		Columns: []string{"workers", "system", "throughput(TPS)", "speedup", "mergewaits", "median", "max(tail)"},
		Notes: []string{
			"workers bounds concurrently running flush/merge jobs across ALL shards and levels",
			"mergewaits: commits blocked on unfinished merges + jobs queued behind a full pool",
			"speedup is relative to the 1-worker run of the same system",
		},
	}
	for _, sys := range []System{SysCOLE, SysCOLEAsync} {
		var base float64
		for _, w := range workers {
			c := cfg
			c.MergeWorkers = w
			dir, err := tempDir(scratch, "mergesched")
			if err != nil {
				return nil, err
			}
			res, err := Run(sys, WorkloadKVStore, c, dir)
			cleanup(dir)
			if err != nil {
				return nil, fmt.Errorf("%s with %d merge workers: %w", sys, w, err)
			}
			if base == 0 {
				base = res.TPS
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(w), string(sys), fmt.Sprintf("%.0f", res.TPS),
				fmt.Sprintf("%.2fx", res.TPS/base),
				fmt.Sprint(res.MergeWaits),
				fmtDur(res.Latency.P50), fmtDur(res.Latency.Max),
			})
			t.Results = append(t.Results, res)
		}
	}
	return t, nil
}
