package bench

import (
	"fmt"
	"time"

	"cole/internal/chain"
	"cole/internal/core"
	"cole/internal/reshard"
	"cole/internal/workload"
)

// reshardBase is the shard count every reshard run starts from; the
// sweep varies the target count so the rows compare rewrite cost and
// post-rewrite write throughput across layouts (including the
// same-count row, which measures pure compaction).
const reshardBase = 2

// ReshardBench measures offline shard rebalancing: a store is built at
// reshardBase shards on the write-only KVStore workload (the shardscale
// methodology: batched blocks, shared merge pool), cleanly flushed, and
// rewritten to each target shard count. Reported per target: rewrite
// wall time and bandwidth (logical entry MB/s), plus write TPS on the
// same workload before and after the rewrite — the "after" phase drives
// the reopened store through the identical block pipeline, so the
// speedup column shows what the new layout buys (or costs) at commit
// time. The rewrite is a partitioned sort-merge of the immutable runs:
// no replay, no per-key insertion, cost linear in live data volume.
func ReshardBench(cfg Config, counts []int, scratch string) (*Table, error) {
	cfg = cfg.Defaults()
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	cfg.Mix = int(workload.WriteOnly)
	cfg.Batched = true
	t := &Table{
		Title:   "Offline reshard: rewrite cost and write TPS vs target shard count (KVStore WO, batched writes)",
		Columns: []string{"from", "to", "entries", "rewritten", "wall", "MB/s", "TPS(before)", "TPS(after)", "after/before", "imbalance"},
		Notes: []string{
			fmt.Sprintf("each run builds a fresh %d-shard store, FlushAlls, reshards offline, reopens, and keeps writing", reshardBase),
			"rewrite streams every live key/version once (partitioned sort-merge); MB/s is logical entry volume over wall time",
			"the to=from row is a pure compaction: same partitioning, everything rewritten into one bottom run per shard",
			"imbalance = hottest destination shard's entry count over the per-shard mean (1.00 = even)",
		},
	}
	for _, target := range counts {
		res, row, err := reshardOnce(cfg, target, scratch)
		if err != nil {
			return nil, fmt.Errorf("reshard to %d: %w", target, err)
		}
		t.Rows = append(t.Rows, row)
		t.Results = append(t.Results, res)
	}
	return t, nil
}

func reshardOnce(cfg Config, target int, scratch string) (Result, []string, error) {
	dir, err := tempDir(scratch, "reshard")
	if err != nil {
		return Result{}, nil, err
	}
	defer cleanup(dir)

	opts := core.Options{
		Dir:          dir,
		MemCapacity:  cfg.MemCap,
		SizeRatio:    cfg.SizeRatio,
		Fanout:       cfg.Fanout,
		BloomFP:      cfg.BloomFP,
		Shards:       reshardBase,
		MergeWorkers: cfg.MergeWorkers,
	}

	gen, load := newKVStoreSource(cfg)
	drive := func(b *chain.ShardedColeBackend, start uint64, load []chain.Tx) (float64, error) {
		c := chain.New(chain.NewBatched(b), start)
		for len(load) > 0 {
			n := cfg.TxPerBlock
			if n > len(load) {
				n = len(load)
			}
			if _, err := c.ExecuteBlock(load[:n]); err != nil {
				return 0, err
			}
			load = load[n:]
		}
		t0 := time.Now()
		for i := 0; i < cfg.Blocks; i++ {
			if _, err := c.ExecuteBlock(gen.Block(cfg.TxPerBlock)); err != nil {
				return 0, err
			}
		}
		return float64(cfg.Blocks*cfg.TxPerBlock) / time.Since(t0).Seconds(), nil
	}

	// Phase 1: build and measure the source layout.
	b, err := chain.OpenShardedCole(opts)
	if err != nil {
		return Result{}, nil, err
	}
	tpsBefore, err := drive(b, 0, load)
	if err != nil {
		_ = b.Close()
		return Result{}, nil, err
	}
	if err := b.Store.FlushAll(); err != nil {
		_ = b.Close()
		return Result{}, nil, err
	}
	height := b.Store.Height()
	if err := b.Close(); err != nil {
		return Result{}, nil, err
	}

	// Phase 2: the offline rewrite.
	rep, err := reshard.Reshard(dir, target, reshard.Options{MemCapacity: cfg.MemCap, BloomFP: cfg.BloomFP})
	if err != nil {
		return Result{}, nil, err
	}

	// Phase 3: reopen (the directory pins the new count) and keep writing
	// the same pipeline.
	reopened := opts
	reopened.Shards = 0
	b2, err := chain.OpenShardedCole(reopened)
	if err != nil {
		return Result{}, nil, err
	}
	tpsAfter, err := drive(b2, height, nil)
	if err != nil {
		_ = b2.Close()
		return Result{}, nil, err
	}
	if err := b2.Close(); err != nil {
		return Result{}, nil, err
	}

	res := Result{
		System:         SysCOLE,
		Workload:       WorkloadKVStore,
		Blocks:         2 * cfg.Blocks,
		Txs:            2 * cfg.Blocks * cfg.TxPerBlock,
		TPS:            tpsAfter,
		ReshardFrom:    rep.FromShards,
		ReshardTo:      rep.ToShards,
		ReshardSeconds: rep.Elapsed.Seconds(),
		ReshardMBps:    rep.MBPerSec(),
		TPSBefore:      tpsBefore,
		TPSAfter:       tpsAfter,
		Imbalance:      rep.Imbalance,
	}
	row := []string{
		fmt.Sprint(rep.FromShards), fmt.Sprint(rep.ToShards),
		fmt.Sprint(rep.Entries), fmtBytes(rep.Bytes),
		fmtDur(rep.Elapsed), fmt.Sprintf("%.1f", rep.MBPerSec()),
		fmt.Sprintf("%.0f", tpsBefore), fmt.Sprintf("%.0f", tpsAfter),
		fmt.Sprintf("%.2fx", tpsAfter/tpsBefore),
		fmt.Sprintf("%.2f", rep.Imbalance),
	}
	return res, row, nil
}
