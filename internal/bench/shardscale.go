package bench

import (
	"fmt"

	"cole/internal/workload"
)

// ShardScaling measures write-heavy throughput versus shard count: the
// KVStore write-only mix driven through 1..N-shard COLE and COLE* stores
// over the batched write pipeline. Every block lands as one PutBatch
// (pre-bucketed per shard, buckets applied concurrently), per-shard
// commits run in parallel, and all shards share one bounded merge worker
// pool, so scaling combines parallel flush/merge work with rarer
// per-shard cascades; the speedup column is relative to the single-shard
// run of the same system. mergewaits counts merge back-pressure events
// and imbalance is the hottest shard's write share (max/mean).
func ShardScaling(cfg Config, counts []int, scratch string) (*Table, error) {
	cfg = cfg.Defaults()
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	cfg.Mix = int(workload.WriteOnly)
	cfg.Batched = true
	t := &Table{
		Title:   "Shard scaling: write-heavy throughput vs shard count (KVStore WO, batched writes)",
		Columns: []string{"shards", "system", "throughput(TPS)", "speedup", "mergewaits", "imbalance", "median", "max(tail)"},
		Notes: []string{
			"each block is one PutBatch: updates pre-bucketed per shard, buckets applied concurrently",
			"all shards share one bounded merge worker pool (MergeWorkers; default GOMAXPROCS)",
			"imbalance = hottest shard's write count over the per-shard mean (1.00 = even routing)",
			"each configuration reports its best of 2 runs (guards against co-tenant noise)",
		},
	}
	for _, sys := range []System{SysCOLE, SysCOLEAsync} {
		var base float64
		for _, n := range counts {
			c := cfg
			c.Shards = n
			// Best of 2: single runs on shared/1-core hosts swing ±30%
			// from co-tenant noise; the max is applied evenly to every
			// configuration, so it stabilizes without biasing the curve.
			var res Result
			for rep := 0; rep < 2; rep++ {
				dir, err := tempDir(scratch, "shards")
				if err != nil {
					return nil, err
				}
				r, err := Run(sys, WorkloadKVStore, c, dir)
				cleanup(dir)
				if err != nil {
					return nil, fmt.Errorf("%s with %d shards: %w", sys, n, err)
				}
				if r.TPS > res.TPS {
					res = r
				}
			}
			if base == 0 {
				base = res.TPS
			}
			imb := "-"
			if n > 1 {
				imb = fmt.Sprintf("%.2f", res.Imbalance)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), string(sys), fmt.Sprintf("%.0f", res.TPS),
				fmt.Sprintf("%.2fx", res.TPS/base),
				fmt.Sprint(res.MergeWaits), imb,
				fmtDur(res.Latency.P50), fmtDur(res.Latency.Max),
			})
			t.Results = append(t.Results, res)
		}
	}
	return t, nil
}
