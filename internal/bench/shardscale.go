package bench

import (
	"fmt"

	"cole/internal/workload"
)

// ShardScaling measures write-heavy throughput versus shard count: the
// KVStore write-only mix driven through 1..N-shard COLE and COLE* stores.
// Each shard keeps its own B-entry memory level and its commit runs in
// its own goroutine, so scaling combines parallel flush/merge work with
// rarer per-shard cascades; the speedup column is relative to the
// single-shard run of the same system.
func ShardScaling(cfg Config, counts []int, scratch string) (*Table, error) {
	cfg = cfg.Defaults()
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	cfg.Mix = int(workload.WriteOnly)
	t := &Table{
		Title:   "Shard scaling: write-heavy throughput vs shard count (KVStore WO)",
		Columns: []string{"shards", "system", "throughput(TPS)", "speedup", "median", "max(tail)"},
		Notes: []string{
			"per-shard commits run in parallel goroutines; the combined digest stays deterministic",
			"each shard holds its own B-entry memory level (aggregate L0 grows with the shard count)",
		},
	}
	for _, sys := range []System{SysCOLE, SysCOLEAsync} {
		var base float64
		for _, n := range counts {
			c := cfg
			c.Shards = n
			dir, err := tempDir(scratch, "shards")
			if err != nil {
				return nil, err
			}
			res, err := Run(sys, WorkloadKVStore, c, dir)
			cleanup(dir)
			if err != nil {
				return nil, fmt.Errorf("%s with %d shards: %w", sys, n, err)
			}
			if base == 0 {
				base = res.TPS
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), string(sys), fmt.Sprintf("%.0f", res.TPS),
				fmt.Sprintf("%.2fx", res.TPS/base),
				fmtDur(res.Latency.P50), fmtDur(res.Latency.Max),
			})
		}
	}
	return t, nil
}
