package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tiny returns a configuration small enough for unit testing the harness.
func tiny() Config {
	return NewConfig(Params{
		Blocks:     12,
		TxPerBlock: 10,
		Accounts:   50,
		Records:    50,
		MemCap:     64,
		MemBytes:   32 << 10,
		SizeRatio:  2,
		Fanout:     4,
		Seed:       1,
	})
}

func TestSummarize(t *testing.T) {
	if (Summarize(nil) != LatencyStats{}) {
		t.Fatal("empty samples must give zero stats")
	}
	samples := []time.Duration{5, 1, 3, 2, 4}
	s := Summarize(samples)
	if s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("stats wrong: %+v", s)
	}
}

func TestRunEachSystemSmallBank(t *testing.T) {
	for _, sys := range []System{SysMPT, SysCOLE, SysCOLEAsync, SysLIPP, SysCMI} {
		res, err := Run(sys, WorkloadSmallBank, tiny(), t.TempDir())
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.TPS <= 0 || res.Txs != 120 {
			t.Fatalf("%s: implausible result %+v", sys, res)
		}
		if res.StorageBytes <= 0 {
			t.Fatalf("%s: no storage measured", sys)
		}
	}
}

func TestRunKVStoreMixes(t *testing.T) {
	for mix := 0; mix < 3; mix++ {
		cfg := tiny()
		cfg.Mix = mix
		res, err := Run(SysCOLE, WorkloadKVStore, cfg, t.TempDir())
		if err != nil {
			t.Fatalf("mix %d: %v", mix, err)
		}
		if res.TPS <= 0 {
			t.Fatalf("mix %d: no throughput", mix)
		}
	}
}

func TestColeStorageFarBelowMPT(t *testing.T) {
	// The headline claim at miniature scale: COLE's storage is a small
	// fraction of MPT's for the same workload.
	cfg := tiny()
	cfg.Blocks = 60
	mpt, err := Run(SysMPT, WorkloadSmallBank, cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cole, err := Run(SysCOLE, WorkloadSmallBank, cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if cole.StorageBytes*2 > mpt.StorageBytes {
		t.Fatalf("COLE storage %d not well below MPT %d", cole.StorageBytes, mpt.StorageBytes)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "test",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"note"},
	}
	out := tab.Render()
	for _, want := range []string{"== test ==", "333", "note:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig14TinyRuns(t *testing.T) {
	cfg := tiny()
	opts := ProvOptions{Blocks: 30, BaseStates: 10, Ranges: []int{2, 8}, Queries: 3, ScratchDir: t.TempDir()}
	tab, err := Fig14(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2*3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
}

func TestFig15TinyRuns(t *testing.T) {
	cfg := tiny()
	opts := ProvOptions{Blocks: 20, BaseStates: 10, Fanouts: []int{2, 8}, Queries: 2, ScratchDir: t.TempDir()}
	tab, err := Fig15(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2*2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
}

func TestBatchedRunMatchesUnbatched(t *testing.T) {
	// Batched is a pure perf knob: the run must succeed and produce the
	// same number of transactions, and a sharded batched run must record
	// merge-tuning observability data.
	cfg := tiny()
	cfg.Batched = true
	cfg.Shards = 2
	res, err := Run(SysCOLEAsync, WorkloadKVStore, cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Txs != cfg.Blocks*cfg.TxPerBlock || res.TPS <= 0 {
		t.Fatalf("implausible batched result: %+v", res)
	}
	if len(res.ShardPuts) != 2 {
		t.Fatalf("sharded run recorded %d shard put counts, want 2", len(res.ShardPuts))
	}
	if res.Imbalance < 1 {
		t.Fatalf("imbalance %.2f below 1 (max/mean cannot be)", res.Imbalance)
	}
}

func TestMergeSchedTiny(t *testing.T) {
	cfg := tiny()
	cfg.Shards = 2
	tab, err := MergeSched(cfg, []int{1, 2}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(tab.Results) != 4 { // 2 systems × 2 budgets
		t.Fatalf("rows=%d results=%d, want 4 each", len(tab.Rows), len(tab.Results))
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	cfg := tiny()
	cfg.Shards = 2
	tab, err := ShardScaling(cfg, []int{1, 2}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := NewReport([]*Table{tab}).WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(got.Tables) != 1 || len(got.Tables[0].Results) != 4 {
		t.Fatalf("round-trip lost data: %+v", got)
	}
	// The machine-readable results must expose the merge-tuning fields
	// (MergeWaits always, ShardPuts for the multi-shard runs).
	multi := 0
	for _, r := range got.Tables[0].Results {
		if len(r.ShardPuts) > 0 {
			multi++
		}
	}
	if multi != 2 { // one 2-shard run per system
		t.Fatalf("%d results carry per-shard put counts, want 2", multi)
	}
	if !strings.Contains(string(raw), "MergeWaits") {
		t.Fatal("report JSON does not record MergeWaits")
	}
}

func TestMPTBreakdownTiny(t *testing.T) {
	tab, err := MPTBreakdown(tiny(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
}

func TestCompactionBenchTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("the isolated merge phase is sized for a meaningful bandwidth number")
	}
	table, err := CompactionBench(tiny(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Two merge-only rows, the partition-width sweep, then two rows per
	// system.
	sweepRows := len(mergePartitionWidths)
	want := 2 + sweepRows + 4
	if len(table.Rows) != want || len(table.Results) != want {
		t.Fatalf("expected %d rows, got %d rows / %d results", want, len(table.Rows), len(table.Results))
	}
	for i, res := range table.Results {
		if res.IOMode != "legacy" && res.IOMode != "streaming" {
			t.Fatalf("row %d: missing io mode: %+v", i, res)
		}
	}
	// The isolated rows must carry a real bandwidth number; the engine
	// rows must carry the sustained-write counters.
	for _, res := range table.Results[:2] {
		if res.MergeMBps <= 0 || res.MergeBytes <= 0 {
			t.Fatalf("merge-only row lacks bandwidth: %+v", res)
		}
	}
	for i, res := range table.Results[2 : 2+sweepRows] {
		if res.MergePartitions != mergePartitionWidths[i] {
			t.Fatalf("sweep row %d: partitions = %d, want %d", i, res.MergePartitions, mergePartitionWidths[i])
		}
		if res.MergeMBps <= 0 || res.MergeBytes <= 0 {
			t.Fatalf("partition-sweep row lacks bandwidth: %+v", res)
		}
	}
	for _, res := range table.Results[2+sweepRows:] {
		if res.TPS <= 0 || res.PageReads+res.CacheHits == 0 {
			t.Fatalf("engine row lacks counters: %+v", res)
		}
	}
}
