package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// Report is the machine-readable form of a colebench invocation: every
// experiment's table (with raw Results where the experiment records
// them) plus enough host context to compare runs. CI uploads this as a
// workflow artifact so merge tuning is observable across commits.
type Report struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Tables     []*Table `json:"tables"`
}

// NewReport stamps a report around the given tables.
func NewReport(tables []*Table) *Report {
	return &Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Tables:     tables,
	}
}

// WriteJSON writes the report to path (atomically: temp + rename).
func (r *Report) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
