package bench

import (
	"fmt"
	"math/rand"
	"time"

	"cole/internal/chain"
	"cole/internal/core"
	"cole/internal/mpt"
	"cole/internal/shard"
	"cole/internal/types"
	"cole/internal/workload"
)

// OverallOptions scales the Figure 9/10 sweeps. LIPP and CMI get their own
// caps because, as in the paper, they cannot scale (the paper marks the
// missing points with ✖; LIPP dies past 10^2–10^3 blocks, CMI past 10^4).
type OverallOptions struct {
	Heights    []int // block heights to sweep
	LIPPMax    int   // largest height LIPP is attempted at
	CMIMax     int   // largest height CMI is attempted at
	ScratchDir string
}

func (o OverallOptions) defaults() OverallOptions {
	if len(o.Heights) == 0 {
		o.Heights = []int{25, 100, 400}
	}
	if o.LIPPMax == 0 {
		o.LIPPMax = 25
	}
	if o.CMIMax == 0 {
		o.CMIMax = 100
	}
	return o
}

// Fig9 regenerates Figure 9: storage size and throughput vs block height
// under SmallBank, for all five systems.
func Fig9(cfg Config, opts OverallOptions) (*Table, error) {
	return overallExperiment("Figure 9: storage & throughput vs block height (SmallBank)", WorkloadSmallBank, cfg, opts)
}

// Fig10 regenerates Figure 10: the same sweep under KVStore (RW mix).
func Fig10(cfg Config, opts OverallOptions) (*Table, error) {
	return overallExperiment("Figure 10: storage & throughput vs block height (KVStore)", WorkloadKVStore, cfg, opts)
}

func overallExperiment(title string, wl Workload, cfg Config, opts OverallOptions) (*Table, error) {
	cfg = cfg.Defaults()
	opts = opts.defaults()
	t := &Table{
		Title:   title,
		Columns: []string{"system", "blocks", "txs", "storage", "throughput(TPS)", "elapsed"},
		Notes: []string{
			"✖ marks runs skipped because the system cannot scale (paper §8.2.1)",
		},
	}
	for _, blocks := range opts.Heights {
		for _, sys := range []System{SysMPT, SysCOLE, SysCOLEAsync, SysLIPP, SysCMI} {
			if sys == SysLIPP && blocks > opts.LIPPMax {
				t.Rows = append(t.Rows, []string{string(sys), fmt.Sprint(blocks), "✖", "✖", "✖", "✖"})
				continue
			}
			if sys == SysCMI && blocks > opts.CMIMax {
				t.Rows = append(t.Rows, []string{string(sys), fmt.Sprint(blocks), "✖", "✖", "✖", "✖"})
				continue
			}
			c := cfg
			c.Blocks = blocks
			dir, err := tempDir(opts.ScratchDir, "overall")
			if err != nil {
				return nil, err
			}
			res, err := Run(sys, wl, c, dir)
			cleanup(dir)
			if err != nil {
				return nil, fmt.Errorf("%s at %d blocks: %w", sys, blocks, err)
			}
			t.Rows = append(t.Rows, []string{
				string(sys), fmt.Sprint(blocks), fmt.Sprint(res.Txs),
				fmtBytes(res.StorageBytes), fmt.Sprintf("%.0f", res.TPS), fmtDur(res.Elapsed),
			})
		}
	}
	return t, nil
}

// Fig11 regenerates Figure 11: KVStore throughput under the RO/RW/WO
// mixes at two block heights, for MPT, COLE, COLE*.
func Fig11(cfg Config, heights []int, scratch string) (*Table, error) {
	cfg = cfg.Defaults()
	if len(heights) == 0 {
		heights = []int{100, 400}
	}
	t := &Table{
		Title:   "Figure 11: throughput vs workload mix (KVStore)",
		Columns: []string{"height", "mix", "MPT(TPS)", "COLE(TPS)", "COLE*(TPS)"},
	}
	for _, blocks := range heights {
		for _, mix := range []workload.Mix{workload.ReadOnly, workload.ReadWrite, workload.WriteOnly} {
			row := []string{fmt.Sprint(blocks), mix.String()}
			for _, sys := range []System{SysMPT, SysCOLE, SysCOLEAsync} {
				c := cfg
				c.Blocks = blocks
				c.Mix = int(mix)
				dir, err := tempDir(scratch, "mix")
				if err != nil {
					return nil, err
				}
				res, err := Run(sys, WorkloadKVStore, c, dir)
				cleanup(dir)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.0f", res.TPS))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Fig12 regenerates Figure 12: block-latency box plots (min, quartiles,
// p99, max tail) for both workloads at two heights.
func Fig12(cfg Config, heights []int, scratch string) (*Table, error) {
	cfg = cfg.Defaults()
	if len(heights) == 0 {
		heights = []int{100, 400}
	}
	t := &Table{
		Title:   "Figure 12: latency distribution (tail = max outlier)",
		Columns: []string{"workload", "height", "system", "min", "p25", "median", "p75", "p99", "max(tail)"},
		Notes:   []string{"COLE* should cut the tail by orders of magnitude vs COLE while keeping a comparable median (paper §8.2.3)"},
	}
	for _, wl := range []Workload{WorkloadSmallBank, WorkloadKVStore} {
		for _, blocks := range heights {
			for _, sys := range []System{SysMPT, SysCOLE, SysCOLEAsync} {
				c := cfg
				c.Blocks = blocks
				dir, err := tempDir(scratch, "lat")
				if err != nil {
					return nil, err
				}
				res, err := Run(sys, wl, c, dir)
				cleanup(dir)
				if err != nil {
					return nil, err
				}
				l := res.Latency
				t.Rows = append(t.Rows, []string{
					string(wl), fmt.Sprint(blocks), string(sys),
					fmtDur(l.Min), fmtDur(l.P25), fmtDur(l.P50), fmtDur(l.P75), fmtDur(l.P99), fmtDur(l.Max),
				})
			}
		}
	}
	return t, nil
}

// Fig13 regenerates Figure 13: the impact of the size ratio T on COLE and
// COLE* throughput and latency (SmallBank).
func Fig13(cfg Config, ratios []int, scratch string) (*Table, error) {
	cfg = cfg.Defaults()
	if len(ratios) == 0 {
		ratios = []int{2, 4, 6, 8, 10, 12}
	}
	t := &Table{
		Title:   "Figure 13: impact of size ratio T (SmallBank)",
		Columns: []string{"T", "system", "throughput(TPS)", "median", "max(tail)"},
		Notes:   []string{"throughput should stay flat; tail latency is U-shaped in T (paper §8.2.4)"},
	}
	for _, ratio := range ratios {
		for _, sys := range []System{SysCOLE, SysCOLEAsync} {
			c := cfg
			c.SizeRatio = ratio
			dir, err := tempDir(scratch, "ratio")
			if err != nil {
				return nil, err
			}
			res, err := Run(sys, WorkloadSmallBank, c, dir)
			cleanup(dir)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(ratio), string(sys), fmt.Sprintf("%.0f", res.TPS),
				fmtDur(res.Latency.P50), fmtDur(res.Latency.Max),
			})
		}
	}
	return t, nil
}

// ProvOptions scales the provenance experiments (Figures 14, 15).
type ProvOptions struct {
	Blocks     int   // update blocks after the 100-state base load
	BaseStates int   // paper: 100
	Ranges     []int // q sweep for Fig14 (paper: 2..128)
	Fanouts    []int // m sweep for Fig15 (paper: 2..64)
	Queries    int   // queries averaged per point
	ScratchDir string
}

func (o ProvOptions) defaults() ProvOptions {
	if o.Blocks == 0 {
		o.Blocks = 400
	}
	if o.BaseStates == 0 {
		o.BaseStates = 100
	}
	if len(o.Ranges) == 0 {
		o.Ranges = []int{2, 4, 8, 16, 32, 64, 128}
	}
	if len(o.Fanouts) == 0 {
		o.Fanouts = []int{2, 4, 8, 16, 32, 64}
	}
	if o.Queries == 0 {
		o.Queries = 25
	}
	return o
}

// provStore is a built provenance store queried by Fig14/Fig15.
type provStore struct {
	sys    System
	height uint64
	// exactly one of cole, sharded, mpt is set
	cole    *core.Engine
	sharded *shard.Store
	mpt     *chain.MPTBackend
	h       *backendHandle
}

// buildProvStore loads 100 base states then applies update blocks.
func buildProvStore(sys System, cfg Config, opts ProvOptions, dir string) (*provStore, error) {
	h, err := openSystem(sys, dir, cfg)
	if err != nil {
		return nil, err
	}
	gen, load := newProvenanceSource(cfg, opts.BaseStates)
	c := chain.New(h.backend, 0)
	for len(load) > 0 {
		n := cfg.TxPerBlock
		if n > len(load) {
			n = len(load)
		}
		if _, err := c.ExecuteBlock(load[:n]); err != nil {
			h.close()
			return nil, err
		}
		load = load[n:]
	}
	for i := 0; i < opts.Blocks; i++ {
		if _, err := c.ExecuteBlock(gen.Block(cfg.TxPerBlock)); err != nil {
			h.close()
			return nil, err
		}
	}
	ps := &provStore{sys: sys, height: c.Height(), h: h}
	// The batched pipeline wraps the COLE backends; provenance queries
	// need the concrete store behind it.
	backend := h.backend
	if bb, ok := backend.(*chain.Batched); ok {
		backend = bb.Inner()
	}
	switch b := backend.(type) {
	case *chain.ColeBackend:
		ps.cole = b.Engine
	case *chain.ShardedColeBackend:
		ps.sharded = b.Store
	case *chain.MPTBackend:
		ps.mpt = b
	default:
		h.close()
		return nil, fmt.Errorf("bench: provenance unsupported for %s", sys)
	}
	return ps, nil
}

func (ps *provStore) close() { ps.h.close() }

// query runs one provenance query over the latest q blocks for a random
// base state and returns (cpu time incl. verification, proof bytes).
func (ps *provStore) query(rng *rand.Rand, base int, q int) (time.Duration, int, error) {
	addr := chain.KVAddr(workload.ProvKey(rng.Intn(base)))
	lo := ps.height - uint64(q) + 1
	hi := ps.height
	start := time.Now()
	if ps.cole != nil {
		hstate := ps.cole.RootDigest()
		_, proof, err := ps.cole.ProvQuery(addr, lo, hi)
		if err != nil {
			return 0, 0, err
		}
		if _, err := core.VerifyProv(hstate, addr, lo, hi, proof); err != nil {
			return 0, 0, err
		}
		return time.Since(start), proof.Size(), nil
	}
	if ps.sharded != nil {
		hstate := ps.sharded.RootDigest()
		_, proof, err := ps.sharded.ProvQuery(addr, lo, hi)
		if err != nil {
			return 0, 0, err
		}
		if _, err := shard.VerifyProv(hstate, addr, lo, hi, proof); err != nil {
			return 0, 0, err
		}
		return time.Since(start), proof.Size(), nil
	}
	_, proofs, err := ps.mpt.History.ProvQuery(addr, lo, hi)
	if err != nil {
		return 0, 0, err
	}
	size := 0
	for i, p := range proofs {
		blk := lo + uint64(i)
		root, ok, err := ps.mpt.History.RootAt(blk)
		if err != nil || !ok {
			return 0, 0, fmt.Errorf("bench: missing root at %d: %v", blk, err)
		}
		if _, _, err := mpt.VerifyProof(root, addr, p); err != nil {
			return 0, 0, err
		}
		size += p.Size()
	}
	return time.Since(start), size, nil
}

// Fig14 regenerates Figure 14: provenance CPU time and proof size vs the
// queried block range, for MPT, COLE, COLE*.
func Fig14(cfg Config, opts ProvOptions) (*Table, error) {
	cfg = cfg.Defaults()
	opts = opts.defaults()
	t := &Table{
		Title:   "Figure 14: provenance query vs block range",
		Columns: []string{"range q", "system", "cpu/query", "proof size"},
		Notes: []string{
			"MPT grows linearly in q; COLE/COLE* grow sublinearly;",
			"COLE proofs exceed MPT at small q and win as q grows (paper §8.2.5)",
		},
	}
	stores := map[System]*provStore{}
	for _, sys := range []System{SysMPT, SysCOLE, SysCOLEAsync} {
		dir, err := tempDir(opts.ScratchDir, "prov")
		if err != nil {
			return nil, err
		}
		defer cleanup(dir)
		ps, err := buildProvStore(sys, cfg, opts, dir)
		if err != nil {
			return nil, err
		}
		defer ps.close()
		stores[sys] = ps
	}
	for _, q := range opts.Ranges {
		for _, sys := range []System{SysMPT, SysCOLE, SysCOLEAsync} {
			ps := stores[sys]
			rng := rand.New(rand.NewSource(cfg.Seed))
			var cpu time.Duration
			bytes := 0
			for i := 0; i < opts.Queries; i++ {
				d, sz, err := ps.query(rng, opts.BaseStates, q)
				if err != nil {
					return nil, fmt.Errorf("%s q=%d: %w", sys, q, err)
				}
				cpu += d
				bytes += sz
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(q), string(sys),
				fmtDur(cpu / time.Duration(opts.Queries)),
				fmt.Sprintf("%.1fKB", float64(bytes)/float64(opts.Queries)/1024),
			})
		}
	}
	return t, nil
}

// Fig15 regenerates Figure 15: provenance CPU time and proof size vs
// COLE's MHT fanout m, at fixed q = 16.
func Fig15(cfg Config, opts ProvOptions) (*Table, error) {
	cfg = cfg.Defaults()
	opts = opts.defaults()
	const q = 16
	t := &Table{
		Title:   "Figure 15: impact of COLE's MHT fanout m (q=16)",
		Columns: []string{"fanout m", "system", "cpu/query", "proof size"},
		Notes:   []string{"U-shape expected; m=4 is the paper's sweet spot (§A.1.1)"},
	}
	for _, m := range opts.Fanouts {
		for _, sys := range []System{SysCOLE, SysCOLEAsync} {
			c := cfg
			c.Fanout = m
			dir, err := tempDir(opts.ScratchDir, "fanout")
			if err != nil {
				return nil, err
			}
			ps, err := buildProvStore(sys, c, opts, dir)
			if err != nil {
				cleanup(dir)
				return nil, err
			}
			rng := rand.New(rand.NewSource(cfg.Seed))
			var cpu time.Duration
			bytes := 0
			for i := 0; i < opts.Queries; i++ {
				d, sz, err := ps.query(rng, opts.BaseStates, q)
				if err != nil {
					ps.close()
					cleanup(dir)
					return nil, fmt.Errorf("%s m=%d: %w", sys, m, err)
				}
				cpu += d
				bytes += sz
			}
			ps.close()
			cleanup(dir)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(m), string(sys),
				fmtDur(cpu / time.Duration(opts.Queries)),
				fmt.Sprintf("%.1fKB", float64(bytes)/float64(opts.Queries)/1024),
			})
		}
	}
	return t, nil
}

// Table1 regenerates the complexity comparison (Table 1) with measured
// evidence: storage growth between two data sizes, structural depths, and
// write tail latencies.
func Table1(cfg Config, scratch string) (*Table, error) {
	cfg = cfg.Defaults()
	small, large := cfg, cfg
	small.Blocks = cfg.Blocks / 4
	if small.Blocks < 10 {
		small.Blocks = 10
	}
	large.Blocks = cfg.Blocks

	type meas struct {
		storage int64
		levels  int
		tail    time.Duration
		tps     float64
	}
	measure := func(sys System, c Config) (meas, error) {
		dir, err := tempDir(scratch, "table1")
		if err != nil {
			return meas{}, err
		}
		defer cleanup(dir)
		res, err := Run(sys, WorkloadSmallBank, c, dir)
		if err != nil {
			return meas{}, err
		}
		return meas{storage: res.StorageBytes, levels: res.Levels, tail: res.Latency.Max, tps: res.TPS}, nil
	}

	t := &Table{
		Title:   "Table 1 (measured): complexity comparison",
		Columns: []string{"metric", "MPT", "COLE", "COLE*"},
		Notes: []string{
			fmt.Sprintf("growth factors measured from %d → %d blocks (%gx data)", small.Blocks, large.Blocks, float64(large.Blocks)/float64(small.Blocks)),
			"paper: MPT storage O(n·d), COLE O(n); COLE tail O(n) vs COLE* O(1)",
		},
	}
	var ms, ml [3]meas
	for i, sys := range []System{SysMPT, SysCOLE, SysCOLEAsync} {
		var err error
		if ms[i], err = measure(sys, small); err != nil {
			return nil, err
		}
		if ml[i], err = measure(sys, large); err != nil {
			return nil, err
		}
	}
	growth := func(i int) string {
		if ms[i].storage == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1fx", float64(ml[i].storage)/float64(ms[i].storage))
	}
	t.Rows = append(t.Rows,
		[]string{"storage @small", fmtBytes(ms[0].storage), fmtBytes(ms[1].storage), fmtBytes(ms[2].storage)},
		[]string{"storage @large", fmtBytes(ml[0].storage), fmtBytes(ml[1].storage), fmtBytes(ml[2].storage)},
		[]string{"storage growth", growth(0), growth(1), growth(2)},
		[]string{"levels d_COLE", "-", fmt.Sprint(ml[1].levels), fmt.Sprint(ml[2].levels)},
		[]string{"write tail latency", fmtDur(ml[0].tail), fmtDur(ml[1].tail), fmtDur(ml[2].tail)},
		[]string{"throughput (TPS)", fmt.Sprintf("%.0f", ml[0].tps), fmt.Sprintf("%.0f", ml[1].tps), fmt.Sprintf("%.0f", ml[2].tps)},
	)
	return t, nil
}

// MPTBreakdown reproduces the §1 motivating stat: the share of MPT
// storage occupied by the underlying data (the paper observed 2.8% under
// SmallBank).
func MPTBreakdown(cfg Config, scratch string) (*Table, error) {
	cfg = cfg.Defaults()
	dir, err := tempDir(scratch, "breakdown")
	if err != nil {
		return nil, err
	}
	defer cleanup(dir)
	h, err := openSystem(SysMPT, dir, cfg)
	if err != nil {
		return nil, err
	}
	defer h.close()
	mptB := h.backend.(*chain.MPTBackend)
	gen := workload.NewSmallBank(cfg.Seed, cfg.Accounts)
	c := chain.New(h.backend, 0)
	for i := 0; i < cfg.Blocks; i++ {
		if _, err := c.ExecuteBlock(gen.Block(cfg.TxPerBlock)); err != nil {
			return nil, err
		}
	}
	if err := mptB.DB.Flush(); err != nil {
		return nil, err
	}
	total := mptB.DB.SizeOnDisk()
	// Underlying data: every state update stores addr+value once.
	dataBytes := mptB.Trie.Stats().Puts * int64(types.AddressSize+types.ValueSize)
	t := &Table{
		Title:   "§1 motivating stat: MPT storage breakdown (SmallBank)",
		Columns: []string{"metric", "value"},
		Notes:   []string{"paper observed the underlying data at 2.8% of total MPT storage"},
	}
	t.Rows = append(t.Rows,
		[]string{"total MPT storage", fmtBytes(total)},
		[]string{"underlying data", fmtBytes(dataBytes)},
		[]string{"data share", fmt.Sprintf("%.1f%%", 100*float64(dataBytes)/float64(total))},
	)
	return t, nil
}
