package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cole/internal/core"
	"cole/internal/run"
	"cole/internal/types"
)

// compactionReadsPerBlock is how many point reads follow each commit in
// the compaction experiment: enough traffic to populate the page-cache
// counters (and show that streaming merges do not thrash the LRU)
// without turning the sustained-write phase into a read benchmark.
const compactionReadsPerBlock = 16

// compactionMergeFloor is the minimum entry count of the isolated merge
// measurement: below this the per-build fixed costs (three file
// creations and fsyncs) swamp the per-entry data path and the bandwidth
// number stops meaning anything, so tiny smoke configs are topped up
// (~12 MB of entries; the isolated phase stays under a few seconds).
const compactionMergeFloor = 200_000

// compactionMergeReps repeats the isolated merge and keeps the best
// bandwidth (the rep least disturbed by the rest of the host), matching
// the best-of-N convention of the shardscale sweep.
const compactionMergeReps = 3

// CompactionBench measures the merge/build data path, comparing the
// legacy compaction granularity (one page per write syscall, one-page
// merge reads, one SHA-256 leaf hash and one Bloom base hash per merged
// entry) against the streaming pipeline (~1 MiB readahead windows,
// coalesced page writes, Merkle leaf-hash passthrough, consecutive-
// version Bloom fast path). Every merged entry is re-read, re-hashed,
// and re-written, so sustained write TPS is gated by this bandwidth —
// exactly the back-pressure MergeWaits counts.
//
// Two phases per IO mode:
//
//   - an isolated k-way merge of SizeRatio sorted runs built from the
//     workload's entries, timed with nothing else running — the clean
//     merge-bandwidth number (identical data path for COLE and COLE*;
//     only scheduling differs);
//   - a sustained-write engine phase per system (COLE, COLE*) reporting
//     write TPS, merge waits, point-read page-cache hits/misses, and
//     commit-latency tails while compactions run in the background.
//
// Both modes produce byte-identical run files and digests (golden
// tested); only the IO/CPU cost differs.
func CompactionBench(cfg Config, scratch string) (*Table, error) {
	cfg = cfg.Defaults()
	t := &Table{
		Title:   "Compaction pipeline: merge bandwidth and sustained-write behavior (legacy vs streaming IO)",
		Columns: []string{"phase", "io-mode", "write(TPS)", "merge(MB/s)", "speedup", "mergewaits", "pagereads", "cachehits", "p99", "max(tail)"},
		Notes: []string{
			"legacy: 1-page write syscalls, 1-page merge reads, leaf + bloom hashes recomputed per merged entry",
			"streaming: ~1 MiB coalesced writes + readahead, leaf hashes streamed from the source .mrk files",
			fmt.Sprintf("merge-only: isolated %d-way sort-merge of the workload's entries, best of %d reps", cfg.SizeRatio, compactionMergeReps),
			"merge-par: the same isolated streaming merge fanned across W key-range partitions (speedup vs its own w=1 row; output runs byte-identical at every width)",
			"engine rows: merge(MB/s) is level-merge volume over wall time inside level-merge builds (background merges time-slice with the foreground on small hosts)",
			"pagereads/cachehits count the point-read page cache, which merges bypass in BOTH legs (the legacy leg reverts syscall granularity and per-entry hashing, not the seed's cache-routed reads)",
			"speedup is streaming over the legacy leg of the same phase",
			"run files and digests are byte-identical across both modes (golden-tested)",
		},
	}
	addRow := func(phase string, res Result, base float64) {
		speedup := "-"
		if res.IOMode == "streaming" && base > 0 {
			speedup = fmt.Sprintf("%.2fx", res.MergeMBps/base)
		}
		tps := "-"
		if res.TPS > 0 {
			tps = fmt.Sprintf("%.0f", res.TPS)
		}
		lat := func(d time.Duration) string {
			if d == 0 {
				return "-"
			}
			return fmtDur(d)
		}
		t.Rows = append(t.Rows, []string{
			phase, res.IOMode, tps,
			fmt.Sprintf("%.1f", res.MergeMBps), speedup,
			fmt.Sprint(res.MergeWaits), fmt.Sprint(res.PageReads), fmt.Sprint(res.CacheHits),
			lat(res.Latency.P99), lat(res.Latency.Max),
		})
		t.Results = append(t.Results, res)
	}

	var mergeBase float64
	for _, mode := range []string{"legacy", "streaming"} {
		res, err := isolatedMergeRun(mode, cfg, scratch)
		if err != nil {
			return nil, fmt.Errorf("merge-only (%s): %w", mode, err)
		}
		if mode == "legacy" {
			mergeBase = res.MergeMBps
		}
		addRow("merge-only", res, mergeBase)
	}
	sweep, err := isolatedPartitionSweep(cfg, scratch)
	if err != nil {
		return nil, fmt.Errorf("merge partition sweep: %w", err)
	}
	var wideBase float64
	for _, res := range sweep {
		base := wideBase
		if res.MergePartitions == 1 {
			wideBase = res.MergeMBps
			base = 0 // the W=1 row is its own baseline
		}
		addRow(fmt.Sprintf("merge-par(w=%d)", res.MergePartitions), res, base)
	}
	for _, sys := range []System{SysCOLE, SysCOLEAsync} {
		var base float64
		for _, mode := range []string{"legacy", "streaming"} {
			res, err := compactionRun(sys, mode, cfg, scratch)
			if err != nil {
				return nil, fmt.Errorf("%s (%s): %w", sys, mode, err)
			}
			if mode == "legacy" {
				base = res.MergeMBps
			}
			addRow(string(sys), res, base)
		}
	}
	return t, nil
}

// compactionEntries generates the sorted, globally-unique compound-key
// stream the workload would commit: uniform updates over cfg.Records
// addresses, deduplicated per block, so addresses carry many versions —
// the shape level merges actually see.
func compactionEntries(cfg Config, total int) []types.Entry {
	rng := rand.New(rand.NewSource(cfg.Seed))
	addrs := make([]types.Address, cfg.Records)
	for i := range addrs {
		addrs[i] = types.AddressFromUint64(uint64(i))
	}
	entries := make([]types.Entry, 0, total)
	seen := make(map[types.Address]bool, cfg.TxPerBlock)
	blk := uint64(0)
	for len(entries) < total {
		blk++
		clear(seen)
		for i := 0; i < cfg.TxPerBlock && len(entries) < total; i++ {
			a := addrs[rng.Intn(len(addrs))]
			if seen[a] {
				continue
			}
			seen[a] = true
			entries = append(entries, types.Entry{
				Key:   types.CompoundKey{Addr: a, Blk: blk},
				Value: types.ValueFromUint64(rng.Uint64()),
			})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key.Less(entries[j].Key) })
	return entries
}

// isolatedMergeRun builds cfg.SizeRatio sorted runs from the workload's
// entry stream and times their k-way merge into one run, with nothing
// else on the host's plate: the clean merge-bandwidth measurement.
func isolatedMergeRun(mode string, cfg Config, scratch string) (Result, error) {
	dir, err := tempDir(scratch, "compaction-merge")
	if err != nil {
		return Result{}, err
	}
	defer cleanup(dir)

	total := cfg.Blocks * cfg.TxPerBlock
	if total < compactionMergeFloor {
		total = compactionMergeFloor
	}
	entries := compactionEntries(cfg, total)
	params := run.Params{PageSize: 0, Fanout: cfg.Fanout, BloomFP: cfg.BloomFP}
	if mode == "legacy" {
		params.MergeReadahead = 1
		params.WriteBufferPages = 1
		params.LegacyCompaction = true
	}
	// Stripe the sorted stream round-robin into SizeRatio sorted sources:
	// interleaved key ranges, the shape of a level's run group.
	ways := cfg.SizeRatio
	perRun := make([][]types.Entry, ways)
	for i, e := range entries {
		perRun[i%ways] = append(perRun[i%ways], e)
	}
	runs := make([]*run.Run, ways)
	for k := range runs {
		r, err := run.Build(dir, uint64(k), int64(len(perRun[k])), params, run.NewSliceIterator(perRun[k]))
		if err != nil {
			return Result{}, err
		}
		runs[k] = r
	}
	defer func() {
		for _, r := range runs {
			if r != nil {
				_ = r.Close()
			}
		}
	}()

	res := Result{Workload: "compaction", IOMode: mode, Txs: len(entries)}
	res.MergeBytes = int64(len(entries)) * types.EntrySize
	for rep := 0; rep < compactionMergeReps; rep++ {
		start := time.Now()
		it := run.MergeRuns(runs)
		out, err := run.Build(dir, uint64(1000+rep), int64(len(entries)), params, it)
		if err != nil {
			return Result{}, err
		}
		if err := it.Err(); err != nil {
			return Result{}, err
		}
		elapsed := time.Since(start)
		if mbps := float64(res.MergeBytes) / (1 << 20) / elapsed.Seconds(); mbps > res.MergeMBps {
			res.MergeMBps = mbps
			res.Elapsed = elapsed
		}
		if err := out.Remove(); err != nil {
			return Result{}, err
		}
	}
	return res, nil
}

// mergePartitionWidths is the compaction experiment's partition sweep:
// the same isolated merge fanned across 1, 2, 4, and 8 key-range spans.
var mergePartitionWidths = []int{1, 2, 4, 8}

// isolatedPartitionSweep builds the streaming-mode source runs once and
// times their k-way merge at each partition width. W=1 is the sequential
// streaming build; wider rows plan page-aligned spans and fan them
// across goroutines exactly like the engine's partitioned merges (which
// route through the merge pool instead — same data path). The output is
// byte-identical at every width, so the sweep isolates pure wall-time
// scaling of one big merge.
func isolatedPartitionSweep(cfg Config, scratch string) ([]Result, error) {
	dir, err := tempDir(scratch, "compaction-partitions")
	if err != nil {
		return nil, err
	}
	defer cleanup(dir)

	total := cfg.Blocks * cfg.TxPerBlock
	if total < compactionMergeFloor {
		total = compactionMergeFloor
	}
	entries := compactionEntries(cfg, total)
	params := run.Params{PageSize: 0, Fanout: cfg.Fanout, BloomFP: cfg.BloomFP}
	ways := cfg.SizeRatio
	perRun := make([][]types.Entry, ways)
	for i, e := range entries {
		perRun[i%ways] = append(perRun[i%ways], e)
	}
	runs := make([]*run.Run, ways)
	for k := range runs {
		r, err := run.Build(dir, uint64(k), int64(len(perRun[k])), params, run.NewSliceIterator(perRun[k]))
		if err != nil {
			return nil, err
		}
		runs[k] = r
	}
	defer func() {
		for _, r := range runs {
			if r != nil {
				_ = r.Close()
			}
		}
	}()

	var out []Result
	id := uint64(2000)
	for _, w := range mergePartitionWidths {
		res := Result{Workload: "compaction", IOMode: "streaming", MergePartitions: w, Txs: len(entries)}
		res.MergeBytes = int64(len(entries)) * types.EntrySize
		for rep := 0; rep < compactionMergeReps; rep++ {
			start := time.Now()
			built, err := partitionedMergeOnce(dir, id, runs, int64(len(entries)), params, w)
			if err != nil {
				return nil, err
			}
			id++
			elapsed := time.Since(start)
			if mbps := float64(res.MergeBytes) / (1 << 20) / elapsed.Seconds(); mbps > res.MergeMBps {
				res.MergeMBps = mbps
				res.Elapsed = elapsed
			}
			if err := built.Remove(); err != nil {
				return nil, err
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// partitionedMergeOnce merges runs into one destination run at the given
// width (the bench-side mirror of the engine's buildLevelRun, with plain
// goroutine spawns instead of merge-pool slots).
func partitionedMergeOnce(dir string, id uint64, runs []*run.Run, count int64, params run.Params, width int) (*run.Run, error) {
	if width > 1 {
		spans, err := run.PlanRuns(runs, width, params.PageSize)
		if err != nil {
			return nil, err
		}
		if len(spans) > 1 {
			par := run.Parallel{Spawn: func(fn func()) { go fn() }}
			return run.BuildPartitioned(dir, id, count, params, spans,
				func(sp run.Span) (run.Iterator, error) { return run.MergeRunsRange(runs, sp), nil }, par)
		}
	}
	it := run.MergeRuns(runs)
	r, err := run.Build(dir, id, count, params, it)
	if err != nil {
		return nil, err
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// compactionRun drives one engine through the sustained-write phase and
// gathers the compaction counters.
func compactionRun(sys System, mode string, cfg Config, scratch string) (Result, error) {
	dir, err := tempDir(scratch, "compaction")
	if err != nil {
		return Result{}, err
	}
	defer cleanup(dir)

	total := cfg.Blocks * cfg.TxPerBlock
	// Keep the L0 small enough that the phase flushes and merges several
	// times — the experiment measures compaction, not memtable inserts.
	memCap := cfg.MemCap
	if total >= 64 && memCap > total/8 {
		memCap = total / 8
	}
	opts := core.Options{
		Dir:             dir,
		MemCapacity:     memCap,
		SizeRatio:       cfg.SizeRatio,
		Fanout:          cfg.Fanout,
		BloomFP:         cfg.BloomFP,
		AsyncMerge:      sys == SysCOLEAsync,
		MergeWorkers:    cfg.MergeWorkers,
		MergePartitions: cfg.MergePartitions,
	}
	if mode == "legacy" {
		opts.MergeReadahead = 1
		opts.WriteBufferPages = 1
		opts.LegacyCompaction = true
	}
	e, err := core.Open(opts)
	if err != nil {
		return Result{}, err
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	addrs := make([]types.Address, cfg.Records)
	for i := range addrs {
		addrs[i] = types.AddressFromUint64(uint64(i))
	}
	res := Result{System: sys, Workload: "compaction", IOMode: mode, MergePartitions: cfg.MergePartitions, Blocks: cfg.Blocks, Txs: total}
	upd := make([]types.Update, cfg.TxPerBlock)
	start := time.Now()
	for b := 1; b <= cfg.Blocks; b++ {
		bStart := time.Now()
		if err := e.BeginBlock(uint64(b)); err != nil {
			return Result{}, err
		}
		for i := range upd {
			upd[i] = types.Update{
				Addr:  addrs[rng.Intn(len(addrs))],
				Value: types.ValueFromUint64(rng.Uint64()),
			}
		}
		if err := e.PutBatch(upd); err != nil {
			return Result{}, err
		}
		if _, err := e.Commit(); err != nil {
			return Result{}, err
		}
		res.blockLats = append(res.blockLats, time.Since(bStart))
		// Concurrent-workload stand-in: a few point reads per block keep
		// the page cache busy while compactions run.
		for i := 0; i < compactionReadsPerBlock; i++ {
			if _, _, err := e.Get(addrs[rng.Intn(len(addrs))]); err != nil {
				return Result{}, err
			}
		}
	}
	// Join and commit every outstanding background merge inside the timed
	// window so MergeBytes and the wall clock cover the same work.
	if err := e.FlushAll(); err != nil {
		return Result{}, err
	}
	res.Elapsed = time.Since(start)

	st := e.Stats()
	res.TPS = float64(res.Txs) / res.Elapsed.Seconds()
	res.Latency = Summarize(res.blockLats)
	res.MergeWaits = st.MergeWaits
	res.MergeBytes = st.MergeBytes
	if st.MergeNanos > 0 {
		res.MergeMBps = float64(st.MergeBytes) / (1 << 20) / (float64(st.MergeNanos) / 1e9)
	}
	res.PageReads = st.PageReads
	res.CacheHits = st.CacheHits
	sb := e.Storage()
	res.StorageBytes = sb.DataBytes + sb.IndexBytes
	res.DataBytes = sb.DataBytes
	res.IndexBytes = sb.IndexBytes
	res.Levels = sb.Levels
	return res, nil
}
