// Package lipp implements the paper's LIPP baseline (§8.1.1): the updatable
// learned index with precise positions [54], applied to blockchain storage
// *without* COLE's column-based design, and with the node-persistence
// strategy MPT uses so historical roots stay traversable.
//
// Each node carries a linear model mapping keys to slots; a slot is empty,
// holds an entry, or points to a child node created when two keys collide.
// Nodes are content-addressed in the kvstore and copied on write, so every
// block persists a fresh copy of every node on each update path — and
// learned nodes are *large* (slot arrays sized to the data), which is
// precisely why the paper measures LIPP storage at 5–31× MPT's and finds
// it cannot scale past ~10^2–10^3 blocks. This module reproduces that
// pathology honestly rather than optimizing it away.
//
// Simplifications vs. full LIPP (DESIGN.md §4): the conflict-resolution
// and node-rebuild policies are reduced to (a) child creation on collision
// and (b) whole-tree rebuild when occupancy exceeds one half — neither
// changes the two properties the evaluation depends on (big persisted
// nodes, per-update path copies).
package lipp

import (
	"encoding/binary"
	"fmt"
	"math"

	"cole/internal/kvstore"
	"cole/internal/types"
)

const (
	slotEmpty = 0x00
	slotEntry = 0x01
	slotChild = 0x02

	rootInitialSlots = 64
	childSlots       = 8
	// gamma is the slot head-room applied at a rebuild: occupancy drops to
	// 1/gamma, so the tree doubles in size before the next rebuild (a
	// rebuild-per-insert would otherwise follow immediately).
	gamma = 4
)

// Tree is a LIPP-style learned index over addresses.
type Tree struct {
	db    *kvstore.DB
	root  types.Hash
	count int
	cache map[types.Hash]*node
	stats Stats
}

// Stats counts tree operations.
type Stats struct {
	Puts       int64
	Gets       int64
	NodesWrite int64
	NodesRead  int64
	Rebuilds   int64
}

type entry struct {
	addr  types.Address
	value types.Value
}

type slot struct {
	kind  byte
	ent   entry
	child types.Hash
}

type node struct {
	kmin  float64 // model domain start
	slope float64 // slots per key unit
	slots []slot
}

// New creates a LIPP tree over db.
func New(db *kvstore.DB) *Tree {
	return &Tree{db: db, cache: map[types.Hash]*node{}}
}

// Root returns the current root hash (ZeroHash when empty).
func (t *Tree) Root() types.Hash { return t.root }

// Count returns the number of stored addresses.
func (t *Tree) Count() int { return t.count }

// Stats returns counters.
func (t *Tree) Stats() Stats { return t.stats }

func keyFloat(a types.Address) float64 {
	return types.U256FromKey(types.CompoundKey{Addr: a}).Float64()
}

func (n *node) predict(k float64) int {
	p := (k - n.kmin) * n.slope
	if math.IsNaN(p) || p <= 0 {
		return 0
	}
	if p >= float64(len(n.slots)-1) {
		return len(n.slots) - 1
	}
	return int(p)
}

// ---- node persistence ----

func nodeKey(h types.Hash) []byte { return append([]byte("l/"), h[:]...) }

func encode(n *node) []byte {
	out := make([]byte, 0, 20+len(n.slots))
	var f [8]byte
	binary.BigEndian.PutUint64(f[:], math.Float64bits(n.kmin))
	out = append(out, f[:]...)
	binary.BigEndian.PutUint64(f[:], math.Float64bits(n.slope))
	out = append(out, f[:]...)
	binary.BigEndian.PutUint32(f[:4], uint32(len(n.slots)))
	out = append(out, f[:4]...)
	for _, s := range n.slots {
		out = append(out, s.kind)
		switch s.kind {
		case slotEntry:
			out = append(out, s.ent.addr[:]...)
			out = append(out, s.ent.value[:]...)
		case slotChild:
			out = append(out, s.child[:]...)
		}
	}
	return out
}

func decode(raw []byte) (*node, error) {
	if len(raw) < 20 {
		return nil, fmt.Errorf("lipp: truncated node")
	}
	n := &node{
		kmin:  math.Float64frombits(binary.BigEndian.Uint64(raw[0:8])),
		slope: math.Float64frombits(binary.BigEndian.Uint64(raw[8:16])),
	}
	cnt := int(binary.BigEndian.Uint32(raw[16:20]))
	if cnt < 1 || cnt > 1<<28 {
		return nil, fmt.Errorf("lipp: implausible slot count %d", cnt)
	}
	n.slots = make([]slot, cnt)
	off := 20
	for i := 0; i < cnt; i++ {
		if off >= len(raw) {
			return nil, fmt.Errorf("lipp: slots truncated")
		}
		kind := raw[off]
		off++
		switch kind {
		case slotEmpty:
			n.slots[i] = slot{kind: slotEmpty}
		case slotEntry:
			if off+types.AddressSize+types.ValueSize > len(raw) {
				return nil, fmt.Errorf("lipp: entry truncated")
			}
			var e entry
			copy(e.addr[:], raw[off:])
			off += types.AddressSize
			copy(e.value[:], raw[off:])
			off += types.ValueSize
			n.slots[i] = slot{kind: slotEntry, ent: e}
		case slotChild:
			if off+types.HashSize > len(raw) {
				return nil, fmt.Errorf("lipp: child truncated")
			}
			s := slot{kind: slotChild}
			copy(s.child[:], raw[off:])
			off += types.HashSize
			n.slots[i] = s
		default:
			return nil, fmt.Errorf("lipp: unknown slot kind 0x%02x", kind)
		}
	}
	return n, nil
}

func (t *Tree) store(n *node) (types.Hash, error) {
	raw := encode(n)
	h := types.HashData(raw)
	if err := t.db.Put(nodeKey(h), raw); err != nil {
		return types.Hash{}, err
	}
	t.stats.NodesWrite++
	if len(t.cache) > 1024 {
		for k := range t.cache {
			delete(t.cache, k)
			break
		}
	}
	t.cache[h] = n
	return h, nil
}

func (t *Tree) load(h types.Hash) (*node, error) {
	if n, ok := t.cache[h]; ok {
		return n, nil
	}
	raw, ok, err := t.db.Get(nodeKey(h))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("lipp: missing node %v", h)
	}
	t.stats.NodesRead++
	n, err := decode(raw)
	if err != nil {
		return nil, err
	}
	t.cache[h] = n
	return n, nil
}

// Put inserts or updates an address. The whole path (often just the huge
// root) is re-persisted.
func (t *Tree) Put(addr types.Address, value types.Value) error {
	t.stats.Puts++
	if t.root == types.ZeroHash {
		n := &node{kmin: keyFloat(addr), slope: 0, slots: make([]slot, rootInitialSlots)}
		n.slots[0] = slot{kind: slotEntry, ent: entry{addr: addr, value: value}}
		h, err := t.store(n)
		if err != nil {
			return err
		}
		t.root = h
		t.count = 1
		return nil
	}
	newRoot, added, err := t.insert(t.root, addr, value, 0)
	if err != nil {
		return err
	}
	t.root = newRoot
	if added {
		t.count++
	}
	// Rebuild when the root is crowded: LIPP's node adjustment, reduced
	// to a full refit.
	rootNode, err := t.load(t.root)
	if err != nil {
		return err
	}
	if t.count*2 > len(rootNode.slots) {
		return t.rebuild()
	}
	return nil
}

func (t *Tree) insert(h types.Hash, addr types.Address, value types.Value, depth int) (types.Hash, bool, error) {
	n, err := t.load(h)
	if err != nil {
		return types.Hash{}, false, err
	}
	k := keyFloat(addr)
	idx := n.predict(k)
	cp := &node{kmin: n.kmin, slope: n.slope, slots: append([]slot(nil), n.slots...)}
	switch n.slots[idx].kind {
	case slotEmpty:
		cp.slots[idx] = slot{kind: slotEntry, ent: entry{addr: addr, value: value}}
		nh, err := t.store(cp)
		return nh, true, err
	case slotEntry:
		old := n.slots[idx].ent
		if old.addr == addr {
			cp.slots[idx] = slot{kind: slotEntry, ent: entry{addr: addr, value: value}}
			nh, err := t.store(cp)
			return nh, false, err
		}
		childHash, err := t.makeChild(old, entry{addr: addr, value: value}, depth+1)
		if err != nil {
			return types.Hash{}, false, err
		}
		cp.slots[idx] = slot{kind: slotChild, child: childHash}
		nh, err := t.store(cp)
		return nh, true, err
	case slotChild:
		childHash, added, err := t.insert(n.slots[idx].child, addr, value, depth+1)
		if err != nil {
			return types.Hash{}, false, err
		}
		cp.slots[idx] = slot{kind: slotChild, child: childHash}
		nh, err := t.store(cp)
		return nh, added, err
	}
	return types.Hash{}, false, fmt.Errorf("lipp: corrupt slot kind")
}

// makeChild builds a node separating two colliding entries. When their
// float keys coincide (indistinguishable to the model) the node degrades
// to sequential placement, which lookups handle by scanning.
func (t *Tree) makeChild(a, b entry, depth int) (types.Hash, error) {
	ka, kb := keyFloat(a.addr), keyFloat(b.addr)
	if ka > kb {
		a, b = b, a
		ka, kb = kb, ka
	}
	n := &node{kmin: ka, slots: make([]slot, childSlots)}
	if kb > ka {
		n.slope = float64(childSlots-1) / (kb - ka)
	}
	ia, ib := n.predict(ka), n.predict(kb)
	if ia == ib {
		// Degenerate: place sequentially.
		n.slope = 0
		n.slots[0] = slot{kind: slotEntry, ent: a}
		n.slots[1] = slot{kind: slotEntry, ent: b}
	} else {
		n.slots[ia] = slot{kind: slotEntry, ent: a}
		n.slots[ib] = slot{kind: slotEntry, ent: b}
	}
	return t.store(n)
}

// rebuild refits the root model over all entries (γ slots per entry).
func (t *Tree) rebuild() error {
	t.stats.Rebuilds++
	var entries []entry
	if err := t.collect(t.root, &entries); err != nil {
		return err
	}
	if len(entries) == 0 {
		t.root = types.ZeroHash
		return nil
	}
	kmin, kmax := math.Inf(1), math.Inf(-1)
	for _, e := range entries {
		k := keyFloat(e.addr)
		if k < kmin {
			kmin = k
		}
		if k > kmax {
			kmax = k
		}
	}
	nslots := gamma*len(entries) + 1
	n := &node{kmin: kmin, slots: make([]slot, nslots)}
	if kmax > kmin {
		n.slope = float64(nslots-1) / (kmax - kmin)
	}
	// Place entries; collisions spawn children.
	root, err := t.store(n)
	if err != nil {
		return err
	}
	t.root = root
	t.count = 0
	for _, e := range entries {
		newRoot, added, err := t.insert(t.root, e.addr, e.value, 0)
		if err != nil {
			return err
		}
		t.root = newRoot
		if added {
			t.count++
		}
	}
	return nil
}

func (t *Tree) collect(h types.Hash, out *[]entry) error {
	if h == types.ZeroHash {
		return nil
	}
	n, err := t.load(h)
	if err != nil {
		return err
	}
	for _, s := range n.slots {
		switch s.kind {
		case slotEntry:
			*out = append(*out, s.ent)
		case slotChild:
			if err := t.collect(s.child, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// Get returns the latest value of addr.
func (t *Tree) Get(addr types.Address) (types.Value, bool, error) {
	return t.GetAtRoot(t.root, addr)
}

// GetAtRoot reads addr in a historical root (nodes are persisted, so any
// recorded root remains traversable).
func (t *Tree) GetAtRoot(root types.Hash, addr types.Address) (types.Value, bool, error) {
	t.stats.Gets++
	h := root
	for {
		if h == types.ZeroHash {
			return types.Value{}, false, nil
		}
		n, err := t.load(h)
		if err != nil {
			return types.Value{}, false, err
		}
		idx := n.predict(keyFloat(addr))
		s := n.slots[idx]
		if n.slope == 0 {
			// Degenerate node: scan.
			for _, ss := range n.slots {
				if ss.kind == slotEntry && ss.ent.addr == addr {
					return ss.ent.value, true, nil
				}
			}
			// fall through to the predicted slot for child chains
			s = n.slots[idx]
		}
		switch s.kind {
		case slotEmpty:
			return types.Value{}, false, nil
		case slotEntry:
			if s.ent.addr == addr {
				return s.ent.value, true, nil
			}
			return types.Value{}, false, nil
		case slotChild:
			h = s.child
		}
	}
}
