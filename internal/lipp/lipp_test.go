package lipp

import (
	"math/rand"
	"testing"

	"cole/internal/kvstore"
	"cole/internal/types"
)

func newTree(t *testing.T) (*Tree, *kvstore.DB) {
	t.Helper()
	db, err := kvstore.Open(kvstore.Options{Dir: t.TempDir(), MemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return New(db), db
}

func TestEmpty(t *testing.T) {
	tr, _ := newTree(t)
	if tr.Root() != types.ZeroHash || tr.Count() != 0 {
		t.Fatal("fresh tree must be empty")
	}
	if _, ok, err := tr.Get(types.AddressFromUint64(1)); ok || err != nil {
		t.Fatalf("empty get: %v %v", ok, err)
	}
}

func TestPutGetAgainstMap(t *testing.T) {
	if testing.Short() {
		t.Skip("3k-op reference check needs full scale to trigger rebuilds; run without -short")
	}
	tr, _ := newTree(t)
	ref := map[types.Address]types.Value{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		a := types.AddressFromUint64(r.Uint64() % 700)
		v := types.ValueFromUint64(r.Uint64())
		if err := tr.Put(a, v); err != nil {
			t.Fatal(err)
		}
		ref[a] = v
	}
	if tr.Count() != len(ref) {
		t.Fatalf("count %d, want %d", tr.Count(), len(ref))
	}
	for a, want := range ref {
		got, ok, err := tr.Get(a)
		if err != nil || !ok || got != want {
			t.Fatalf("get(%v): %v ok=%v err=%v", a, got, ok, err)
		}
	}
	if _, ok, _ := tr.Get(types.AddressFromUint64(9999)); ok {
		t.Fatal("absent address must miss")
	}
	if tr.Stats().Rebuilds == 0 {
		t.Fatal("expected root rebuilds at this scale")
	}
}

func TestHistoricalRootsTraversable(t *testing.T) {
	tr, _ := newTree(t)
	a := types.AddressFromUint64(5)
	var roots []types.Hash
	for i := uint64(1); i <= 40; i++ {
		if err := tr.Put(a, types.ValueFromUint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := tr.Put(types.AddressFromUint64(100+i), types.ValueFromUint64(i)); err != nil {
			t.Fatal(err)
		}
		roots = append(roots, tr.Root())
	}
	for i, root := range roots {
		v, ok, err := tr.GetAtRoot(root, a)
		if err != nil || !ok || v.Uint64() != uint64(i+1) {
			t.Fatalf("root %d: got %d ok=%v err=%v", i, v.Uint64(), ok, err)
		}
	}
}

func TestStorageBlowsUpVsUpdates(t *testing.T) {
	// The pathology the paper measures: persisted node copies make LIPP
	// storage grow far faster than the underlying data (5–31× MPT).
	tr, db := newTree(t)
	for i := uint64(0); i < 500; i++ {
		if err := tr.Put(types.AddressFromUint64(i%50), types.ValueFromUint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	dataBytes := int64(50 * (types.AddressSize + types.ValueSize))
	if db.SizeOnDisk() < dataBytes*20 {
		t.Fatalf("LIPP storage %d should dwarf data size %d", db.SizeOnDisk(), dataBytes)
	}
}

func TestCollidingFloatKeys(t *testing.T) {
	// Addresses whose float64 projections coincide exercise the
	// degenerate sequential node path.
	tr, _ := newTree(t)
	var a1, a2 types.Address
	a1[0] = 0x80
	a2 = a1
	a2[19] = 1 // differs only in the lowest byte → same float64
	if err := tr.Put(a1, types.ValueFromUint64(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(a2, types.ValueFromUint64(2)); err != nil {
		t.Fatal(err)
	}
	v1, ok1, _ := tr.Get(a1)
	v2, ok2, _ := tr.Get(a2)
	if !ok1 || !ok2 || v1.Uint64() != 1 || v2.Uint64() != 2 {
		t.Fatalf("colliding keys lost: %v/%v %v/%v", v1, ok1, v2, ok2)
	}
}

func TestOverwriteKeepsCount(t *testing.T) {
	tr, _ := newTree(t)
	a := types.AddressFromUint64(1)
	_ = tr.Put(a, types.ValueFromUint64(1))
	_ = tr.Put(a, types.ValueFromUint64(2))
	if tr.Count() != 1 {
		t.Fatalf("count %d after overwrite", tr.Count())
	}
	v, _, _ := tr.Get(a)
	if v.Uint64() != 2 {
		t.Fatal("overwrite lost")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	if _, err := decode(nil); err == nil {
		t.Fatal("nil must fail")
	}
	if _, err := decode(make([]byte, 10)); err == nil {
		t.Fatal("short must fail")
	}
	n := &node{kmin: 0, slope: 1, slots: make([]slot, 4)}
	raw := encode(n)
	raw[16] = 0xFF // absurd slot count
	if _, err := decode(raw); err == nil {
		t.Fatal("corrupt count must fail")
	}
}
