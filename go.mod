module cole

go 1.22
