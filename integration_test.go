package cole_test

import (
	"math/rand"
	"testing"

	"cole"
	"cole/internal/chain"
	"cole/internal/core"
	"cole/internal/kvstore"
	"cole/internal/types"
	"cole/internal/workload"
)

// TestColeAndMPTAgreeOnProvenance cross-checks the two provenance
// machineries end to end: for the same chain of blocks, the versions COLE
// proves for an address must equal the value *changes* observable through
// MPT's per-block historical roots.
func TestColeAndMPTAgreeOnProvenance(t *testing.T) {
	coleB, err := chain.OpenCole(core.Options{Dir: t.TempDir(), MemCapacity: 128, SizeRatio: 2, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer coleB.Close()
	mptB, err := chain.OpenMPT(kvstore.Options{Dir: t.TempDir(), MemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer mptB.Close()

	const blocks = 80
	for _, b := range []chain.StateBackend{coleB, mptB} {
		gen := workload.NewProvenance(3, 20)
		c := chain.New(b, 0)
		if _, err := c.ExecuteBlock(gen.LoadPhase()); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < blocks; i++ {
			if _, err := c.ExecuteBlock(gen.Block(10)); err != nil {
				t.Fatal(err)
			}
		}
	}

	hstate := coleB.Engine.RootDigest()
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		addr := chain.KVAddr(workload.ProvKey(r.Intn(20)))
		lo := uint64(r.Intn(blocks-10) + 1)
		hi := lo + uint64(r.Intn(20))
		if hi > blocks {
			hi = blocks
		}

		// COLE: verified version list.
		_, proof, err := coleB.Engine.ProvQuery(addr, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		coleVersions, err := core.VerifyProv(hstate, addr, lo, hi, proof)
		if err != nil {
			t.Fatal(err)
		}

		// MPT: per-block lookups; a version exists at block b iff the
		// value changed at b (or first appeared at b).
		var mptVersions []core.Version
		for b := hi; b >= lo; b-- {
			root, ok, err := mptB.History.RootAt(b)
			if err != nil || !ok {
				t.Fatalf("missing root at %d: %v", b, err)
			}
			cur, curOK, err := mptB.Trie.GetAtRoot(root, addr)
			if err != nil {
				t.Fatal(err)
			}
			if !curOK {
				continue
			}
			var prev types.Value
			prevOK := false
			if b > 1 {
				proot, ok2, err := mptB.History.RootAt(b - 1)
				if err != nil || !ok2 {
					t.Fatalf("missing root at %d: %v", b-1, err)
				}
				prev, prevOK, err = mptB.Trie.GetAtRoot(proot, addr)
				if err != nil {
					t.Fatal(err)
				}
			}
			if !prevOK || prev != cur {
				mptVersions = append(mptVersions, core.Version{Blk: b, Value: cur})
			}
		}

		if len(coleVersions) != len(mptVersions) {
			t.Fatalf("trial %d [%d,%d]: COLE %d versions, MPT %d", trial, lo, hi, len(coleVersions), len(mptVersions))
		}
		for i := range coleVersions {
			if coleVersions[i] != mptVersions[i] {
				t.Fatalf("trial %d: version %d differs: %+v vs %+v", trial, i, coleVersions[i], mptVersions[i])
			}
		}
	}
}

// TestGetAtConsistentWithProvQuery cross-checks the two read paths of the
// public API: GetAt(addr, b) must return the newest version ≤ b that
// ProvQuery reports.
func TestGetAtConsistentWithProvQuery(t *testing.T) {
	store, err := cole.Open(cole.Options{Dir: t.TempDir(), MemCapacity: 64, SizeRatio: 2, AsyncMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	addr := cole.AddressFromString("x")
	r := rand.New(rand.NewSource(4))
	const blocks = 200
	for h := uint64(1); h <= blocks; h++ {
		if err := store.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		if r.Intn(3) == 0 {
			if err := store.Put(addr, cole.ValueFromUint64(h)); err != nil {
				t.Fatal(err)
			}
		}
		if err := store.Put(cole.AddressFromString("noise"), cole.ValueFromUint64(h)); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	versions, _, err := store.ProvQuery(addr, 1, blocks)
	if err != nil {
		t.Fatal(err)
	}
	for probe := uint64(1); probe <= blocks; probe += 7 {
		var want *cole.Version
		for i := range versions { // newest first
			if versions[i].Blk <= probe {
				want = &versions[i]
				break
			}
		}
		v, at, ok, err := store.GetAt(addr, probe)
		if err != nil {
			t.Fatal(err)
		}
		if (want == nil) == ok {
			t.Fatalf("probe %d: ok=%v want %v", probe, ok, want != nil)
		}
		if want != nil && (at != want.Blk || v != want.Value) {
			t.Fatalf("probe %d: GetAt says blk %d, ProvQuery says %d", probe, at, want.Blk)
		}
	}
}
