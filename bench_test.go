// Benchmarks regenerating every table and figure of the paper's
// evaluation (§8), plus micro-benchmarks of the core operations.
//
// Each BenchmarkFigN/BenchmarkTable1 run executes the corresponding
// experiment at laptop scale and prints the series the figure plots
// (set COLE_BENCH_SCALE=lab for larger runs, or use cmd/colebench for
// full control). Key outcomes are also exposed as benchmark metrics.
package cole_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"cole"
	"cole/internal/bench"
)

// benchCfg returns the experiment scale; figures print once per process.
func benchCfg() bench.Config {
	if os.Getenv("COLE_BENCH_SCALE") == "lab" {
		return bench.NewConfig(bench.Params{
			Blocks: 400, TxPerBlock: 100, Accounts: 10_000, Records: 10_000,
			MemCap: 16_384, MemBytes: 8 << 20, SizeRatio: 4, Fanout: 4, Seed: 42,
		})
	}
	return bench.NewConfig(bench.Params{
		Blocks: 80, TxPerBlock: 50, Accounts: 1000, Records: 1000,
		MemCap: 1024, MemBytes: 512 << 10, SizeRatio: 4, Fanout: 4, Seed: 42,
	})
}

var printOnce sync.Map

func printTable(b *testing.B, name string, t *bench.Table) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Println(t.Render())
	}
}

func heightsFor(cfg bench.Config) []int {
	return []int{cfg.Blocks / 4, cfg.Blocks}
}

// BenchmarkFig9SmallBank regenerates Figure 9: storage & throughput vs
// block height under SmallBank for MPT, COLE, COLE*, LIPP, CMI.
func BenchmarkFig9SmallBank(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig9(cfg, bench.OverallOptions{
			Heights: heightsFor(cfg), LIPPMax: cfg.Blocks / 4, CMIMax: cfg.Blocks / 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, "fig9", t)
	}
}

// BenchmarkFig10KVStore regenerates Figure 10: the same sweep under the
// YCSB KVStore workload.
func BenchmarkFig10KVStore(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig10(cfg, bench.OverallOptions{
			Heights: heightsFor(cfg), LIPPMax: cfg.Blocks / 4, CMIMax: cfg.Blocks / 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, "fig10", t)
	}
}

// BenchmarkFig11WorkloadMix regenerates Figure 11: throughput under the
// RO/RW/WO mixes.
func BenchmarkFig11WorkloadMix(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig11(cfg, heightsFor(cfg), "")
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, "fig11", t)
	}
}

// BenchmarkFig12Latency regenerates Figure 12: block-latency box plots
// (tail = max outlier) for MPT, COLE, COLE*.
func BenchmarkFig12Latency(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig12(cfg, heightsFor(cfg), "")
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, "fig12", t)
	}
}

// BenchmarkFig13SizeRatio regenerates Figure 13: the size-ratio sweep
// T ∈ {2,4,6,8,10,12} for COLE and COLE*.
func BenchmarkFig13SizeRatio(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig13(cfg, nil, "")
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, "fig13", t)
	}
}

// BenchmarkFig14Provenance regenerates Figure 14: provenance CPU time and
// proof size vs queried range for MPT, COLE, COLE*.
func BenchmarkFig14Provenance(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig14(cfg, bench.ProvOptions{Blocks: cfg.Blocks * 2, Queries: 10})
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, "fig14", t)
	}
}

// BenchmarkFig15Fanout regenerates Figure 15: provenance cost vs COLE's
// MHT fanout m at q = 16.
func BenchmarkFig15Fanout(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig15(cfg, bench.ProvOptions{Blocks: cfg.Blocks, Queries: 8})
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, "fig15", t)
	}
}

// BenchmarkTable1Complexity regenerates Table 1 with measured storage
// growth, structural depths and tail latencies.
func BenchmarkTable1Complexity(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := bench.Table1(cfg, "")
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, "table1", t)
	}
}

// BenchmarkMPTBreakdown regenerates the §1 motivating stat: the share of
// MPT storage that is actual data (paper: 2.8%).
func BenchmarkMPTBreakdown(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		t, err := bench.MPTBreakdown(cfg, "")
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, "mptbreakdown", t)
	}
}

// ---- micro-benchmarks of the public API ----

func newBenchStore(b *testing.B, async bool) *cole.Store {
	b.Helper()
	s, err := cole.Open(cole.Options{
		Dir: b.TempDir(), MemCapacity: 4096, SizeRatio: 4, Fanout: 4, AsyncMerge: async,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

// BenchmarkPut measures write throughput through the public API (one
// block per 100 puts), sync vs async merge.
func BenchmarkPut(b *testing.B) {
	for _, mode := range []struct {
		name  string
		async bool
	}{{"sync", false}, {"async", true}} {
		b.Run(mode.name, func(b *testing.B) {
			s := newBenchStore(b, mode.async)
			height := uint64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%100 == 0 {
					if height > 0 {
						if _, err := s.Commit(); err != nil {
							b.Fatal(err)
						}
					}
					height++
					if err := s.BeginBlock(height); err != nil {
						b.Fatal(err)
					}
				}
				addr := cole.AddressFromString(fmt.Sprintf("acct-%d", i%2000))
				if err := s.Put(addr, cole.ValueFromUint64(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if height > 0 {
				if _, err := s.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGet measures point-lookup latency over a multi-level store.
func BenchmarkGet(b *testing.B) {
	s := newBenchStore(b, false)
	const addrs = 2000
	for h := uint64(1); h <= 100; h++ {
		if err := s.BeginBlock(h); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			addr := cole.AddressFromString(fmt.Sprintf("acct-%d", (int(h)*100+j)%addrs))
			if err := s.Put(addr, cole.ValueFromUint64(h)); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := cole.AddressFromString(fmt.Sprintf("acct-%d", i%addrs))
		if _, _, err := s.Get(addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProvQueryAndVerify measures a verified 16-block provenance
// query end to end.
func BenchmarkProvQueryAndVerify(b *testing.B) {
	s := newBenchStore(b, false)
	hot := cole.AddressFromString("hot")
	const blocks = 300
	for h := uint64(1); h <= blocks; h++ {
		if err := s.BeginBlock(h); err != nil {
			b.Fatal(err)
		}
		if err := s.Put(hot, cole.ValueFromUint64(h)); err != nil {
			b.Fatal(err)
		}
		if err := s.Put(cole.AddressFromString(fmt.Sprintf("bg-%d", h%500)), cole.ValueFromUint64(h)); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	root := s.RootDigest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(blocks - 16 + 1)
		_, proof, err := s.ProvQuery(hot, lo, blocks)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cole.VerifyProv(root, hot, lo, blocks, proof); err != nil {
			b.Fatal(err)
		}
	}
}
